"""Trace-driven timing engine (the QFlex-analogue, paper §3.3 & §6).

Replays per-core :class:`~repro.sim.trace.TraceOp` streams against the
coherent hierarchy under SC, PC, or WC store-buffer semantics, with
EInject fault injection and the full imprecise-exception cost path
(FSBC drain → flush → OS handler).  Cores are interleaved in time
order so coherence traffic (invalidations, forwards) is shared.

The model is interval-style rather than cycle-by-cycle:

* the frontend dispatches ``width`` instructions per cycle;
* a full ROB stalls dispatch until its head retires;
* loads complete after their hierarchy latency, serialised when
  ``dep`` marks pointer chasing;
* stores complete immediately into the store buffer (PC/WC) or after
  the full write latency (SC);
* the store buffer drains FIFO-serially under PC, and with up to
  ``WC_DRAIN_OVERLAP`` overlapping non-blocking drains under WC;
  a full buffer stalls store dispatch;
* syncs (fences/atomics) wait for the buffer to drain and for all
  earlier loads.

This is what makes the SC↔WC gap — and therefore Table 3's speedups —
emerge from store fraction and latency structure rather than from
hard-coded numbers.
"""

from __future__ import annotations

import copy
import heapq
import re as _re
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from ..core.exceptions import ExceptionCode
from ..core.fsb import FsbEntry
from ..core.handler import BatchingHandler, HandlerCosts, MinimalHandler
from ..core.interface import ArchitecturalInterface
from ..obs.telemetry import SIM, current as _telemetry
from .cache.coherence import CoherentHierarchy
from .config import ConsistencyModel, SystemConfig
from .cpu.speculation import SpeculationReport, SpeculationTracker
from .devices.einject import EInject
from .mem.memory import MemoryController
from .trace import (ALU, ALU_B, LOAD, LOAD_B, STORE, STORE_B, SYNC, SYNC_B,
                    PackedTrace, TraceOp)

#: Maximum overlapping store drains under WC (non-FIFO buffer).
WC_DRAIN_OVERLAP = 8

#: Cycles to flush and refill the pipeline on an imprecise exception.
FLUSH_REFILL_CYCLES = 40

#: Replay engine strategies: ``fast`` is the batched engine, ``naive``
#: the original per-op heap loop (the escape hatch), ``verify`` runs
#: both and asserts bit-identical results.
STRATEGIES = ("fast", "naive", "verify")

_INF = float("inf")

#: First byte that is not an ALU op — finds the end of a consecutive
#: ALU run in a packed ``kinds`` bytestring at C speed.
_NON_ALU = _re.compile(b"[^" + ALU.encode("ascii") + b"]")


@dataclass
class CoreTimingStats:
    instructions: int = 0
    loads: int = 0
    stores: int = 0
    syncs: int = 0
    cycles: float = 0.0
    sb_full_stall_cycles: float = 0.0
    imprecise_exceptions: int = 0
    precise_exceptions: int = 0
    faulting_stores: int = 0
    uarch_cycles: float = 0.0       # FSB drain + flush/refill
    os_apply_cycles: float = 0.0
    os_resolve_cycles: float = 0.0
    os_other_cycles: float = 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def exception_cycles(self) -> float:
        return (self.uarch_cycles + self.os_apply_cycles
                + self.os_resolve_cycles + self.os_other_cycles)


@dataclass
class TimingResult:
    """Outcome of one timing run."""

    config: SystemConfig
    core_stats: List[CoreTimingStats]
    speculation: Optional[List[SpeculationReport]] = None

    @property
    def total_cycles(self) -> float:
        return max((s.cycles for s in self.core_stats), default=0.0)

    @property
    def total_instructions(self) -> int:
        return sum(s.instructions for s in self.core_stats)

    @property
    def ipc(self) -> float:
        cycles = self.total_cycles
        return self.total_instructions / cycles if cycles else 0.0

    @property
    def total_imprecise_exceptions(self) -> int:
        return sum(s.imprecise_exceptions for s in self.core_stats)

    @property
    def total_faulting_stores(self) -> int:
        return sum(s.faulting_stores for s in self.core_stats)

    def overhead_breakdown_per_fault(self) -> Dict[str, float]:
        """Average per-faulting-store cycle breakdown (Figure 5)."""
        faults = max(1, self.total_faulting_stores)
        return {
            "uarch": sum(s.uarch_cycles for s in self.core_stats) / faults,
            "os_apply": sum(s.os_apply_cycles for s in self.core_stats) / faults,
            "os_other": (sum(s.os_other_cycles for s in self.core_stats)
                         + sum(s.os_resolve_cycles for s in self.core_stats)) / faults,
        }

    def speculation_peak_kb(self) -> float:
        if not self.speculation:
            return 0.0
        return max(r.peak_kb for r in self.speculation)

    def to_dict(self) -> Dict:
        """JSON-serialisable summary, for archiving runs
        (:mod:`repro.analysis.postprocess`)."""
        return {
            "consistency": self.config.core.consistency,
            "cores": len(self.core_stats),
            "total_cycles": self.total_cycles,
            "total_instructions": self.total_instructions,
            "ipc": self.ipc,
            "imprecise_exceptions": self.total_imprecise_exceptions,
            "faulting_stores": self.total_faulting_stores,
            "precise_exceptions": sum(s.precise_exceptions
                                      for s in self.core_stats),
            "speculation_peak_kb": self.speculation_peak_kb(),
            "per_core": [
                {
                    "instructions": s.instructions,
                    "cycles": s.cycles,
                    "ipc": s.ipc,
                    "sb_full_stall_cycles": s.sb_full_stall_cycles,
                    "exception_cycles": s.exception_cycles,
                }
                for s in self.core_stats
            ],
        }


class _SbSlot:
    """One store-buffer entry.

    ``faulted`` means denied by EInject; ``drain_end`` is then the
    *detection* time — when the error response reaches the store
    buffer (§5.1).  Slots drained out of the buffer are recycled
    through the owning core's free list (the buffer churns through
    one slot per store on the hot path).
    """

    __slots__ = ("addr", "blk", "drain_end", "missed", "faulted")

    def __init__(self, addr: int, drain_end: float, missed: bool,
                 faulted: bool = False) -> None:
        self.addr = addr
        self.blk = addr >> 6  # cached WC-coalescing block id
        self.drain_end = drain_end
        self.missed = missed
        self.faulted = faulted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(f for f, on in (("m", self.missed),
                                        ("F", self.faulted)) if on)
        return f"<sb {self.addr:#x}@{self.drain_end}{flags}>"


class _TimingCore:
    """Timing state for one core's trace replay."""

    def __init__(self, system: "TimingSystem", core_id: int,
                 trace: Sequence[TraceOp]) -> None:
        self.system = system
        self.id = core_id
        self.trace = trace
        self.pos = 0
        cfg = system.config
        self.model = cfg.core.consistency
        self.width = cfg.core.width
        self.rob_capacity = cfg.core.rob_entries
        self.sb_capacity = cfg.core.store_buffer_entries
        self.checkpoint_cap = system.checkpoint_cap
        self._early_detect_acc = 0.0
        #: Clock at which the oldest live checkpoint was taken
        #: (aso_precise rollback accounting).
        self._oldest_checkpoint_start: float = 0.0
        self.clock = 0.0
        self.rob: Deque[float] = deque()  # completion times, in order
        self.sb: List[_SbSlot] = []
        self.last_drain_end = 0.0
        self.last_load_complete = 0.0
        self._last_sync_clock = 0.0
        self._slot_pool: List[_SbSlot] = []
        self.stats = CoreTimingStats()
        self.tel = system.telemetry
        self.interface = ArchitecturalInterface(core_id)
        self.tracker: Optional[SpeculationTracker] = (
            SpeculationTracker() if system.track_speculation else None)

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.pos >= len(self.trace)

    def _retire_for_dispatch(self) -> None:
        """Make room in the ROB; a stalled head pushes the clock."""
        if len(self.rob) >= self.rob_capacity:
            head = self.rob.popleft()
            if head > self.clock:
                self.clock = head

    def _sb_occupancy(self) -> int:
        # Faulted entries never complete on their own; they stay until
        # the exception flow drains them to the FSB.  In-place so the
        # list identity survives (the batched engine holds an alias).
        self.sb[:] = [s for s in self.sb
                      if s.faulted or s.drain_end > self.clock]
        return len(self.sb)

    def _check_detection(self) -> None:
        """Fire the imprecise exception once the earliest denial's
        error response has arrived (deferred detection — this is what
        lets several faulting stores batch into one exception)."""
        faulted = [s for s in self.sb if s.faulted]
        if faulted and min(s.drain_end for s in faulted) <= self.clock:
            self._imprecise_exception()

    def _wait_for_checkpoint(self) -> None:
        """ASO-with-k-checkpoints mode: a store may only retire
        speculatively when a checkpoint is free, i.e. fewer than
        ``checkpoint_cap`` store misses are outstanding — otherwise the
        core stalls like the SC baseline (§3.2: the checkpoint count
        reflects the number of outstanding store misses)."""
        while True:
            live = [s.drain_end for s in self.sb
                    if s.missed and s.drain_end > self.clock]
            if len(live) < self.checkpoint_cap:
                return
            earliest = min(live)
            self.stats.sb_full_stall_cycles += max(
                0.0, earliest - self.clock)
            self.clock = max(self.clock, earliest)

    def _sb_wait_for_slot(self) -> None:
        while self._sb_occupancy() >= self.sb_capacity:
            if any(s.faulted for s in self.sb):
                self._imprecise_exception()
                continue
            earliest = min(s.drain_end for s in self.sb)
            stall = earliest - self.clock
            self.stats.sb_full_stall_cycles += max(0.0, stall)
            self.clock = max(self.clock, earliest)

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Replay one trace op, advancing the core clock."""
        op = self.trace[self.pos]
        self.pos += 1
        self.stats.instructions += 1
        self.clock += 1.0 / self.width
        self._retire_for_dispatch()

        if op.kind == ALU:
            self.rob.append(self.clock + 1)
        elif op.kind == LOAD:
            self._do_load(op)
        elif op.kind == STORE:
            self._do_store(op)
        else:  # SYNC
            self._do_sync()
        self._check_detection()
        self.stats.cycles = max(self.stats.cycles, self.clock)

    # ------------------------------------------------------------------
    def _do_load(self, op: TraceOp) -> None:
        self.stats.loads += 1
        issue = self.clock
        if op.dep:
            issue = max(issue, self.last_load_complete)
        result = self.system.hierarchy.access(self.id, op.addr, False)
        if result.denied:
            self._precise_fault(op.addr)
            result = self.system.hierarchy.access(self.id, op.addr, False)
            issue = max(issue, self.clock)
        complete = issue + result.latency
        self.last_load_complete = complete
        self.rob.append(complete)
        if self.tracker is not None:
            self.tracker.on_load(int(issue), op.addr)

    def _do_store(self, op: TraceOp) -> None:
        self.stats.stores += 1
        if self.model == ConsistencyModel.SC:
            # No store buffer: the write is irrevocable, so it cannot
            # begin until the store is non-speculative at the ROB head,
            # and the store cannot retire until the write completes —
            # stores serialise their full latency on the retire path.
            result = self.system.hierarchy.access(self.id, op.addr, True)
            if result.denied:
                self._precise_fault(op.addr)
                result = self.system.hierarchy.access(self.id, op.addr, True)
            complete = max(self.clock, self.last_drain_end) + result.latency
            self.last_drain_end = complete
            self.rob.append(complete)
            return

        self._sb_wait_for_slot()

        # WC coalescing: a pending drain to the same block absorbs the
        # store (ASO likewise coalesces into the open checkpoint).
        if self.model == ConsistencyModel.WC:
            block = op.addr >> 6
            for slot in self.sb:
                if slot.addr >> 6 == block:
                    self.rob.append(self.clock + 1)
                    return

        if self.checkpoint_cap is not None:
            self._wait_for_checkpoint()
        self.rob.append(self.clock + 1)   # retires into the buffer

        result = self.system.hierarchy.access(self.id, op.addr, True)
        if result.denied:
            self._store_denied(op.addr, result)
            return

        overlap = sorted(s.drain_end for s in self.sb)
        if len(overlap) >= WC_DRAIN_OVERLAP:
            drain_start = max(self.clock, overlap[-WC_DRAIN_OVERLAP])
        else:
            drain_start = self.clock
        drain_end = drain_start + result.latency
        if self.model == ConsistencyModel.PC:
            # Write-permission acquisitions overlap, but the buffer
            # commits values to memory strictly in order (TSO).
            drain_end = max(drain_end, self.last_drain_end + 1)
        self.last_drain_end = drain_end
        if not any(s.missed and s.drain_end > self.clock
                   for s in self.sb):
            self._oldest_checkpoint_start = self.clock
        # Any store that is not an L1 write hit would stall an SC core
        # at retirement — the ASO checkpoint condition.
        missed = result.hit_level != "L1"
        self.sb.append(_SbSlot(op.addr, drain_end, missed))
        if self.tracker is not None:
            self.tracker.on_store_retire(int(self.clock), int(drain_end),
                                         missed, op.addr)

    def _store_denied(self, addr: int, result) -> None:
        """A retired store's transaction was denied by EInject."""
        if self.system.aso_precise:
            self._aso_rollback(addr)
            return
        fraction = self.system.early_detection_fraction
        if fraction > 0.0:
            # Qiu & Dubois-style early detection: a prefetch
            # discovered the fault before retirement, so it is
            # still precise (deterministic thinning).
            self._early_detect_acc += fraction
            if self._early_detect_acc >= 1.0:
                self._early_detect_acc -= 1.0
                self._precise_fault(addr)
                result = self.system.hierarchy.access(
                    self.id, addr, True)
                if not result.denied:
                    self.rob.append(self.clock + 1)
                    self.sb.append(_SbSlot(
                        addr, self.clock + result.latency,
                        missed=result.hit_level != "L1"))
                    return
        # The denial is detected when the error response arrives,
        # a full round trip later; until then the entry occupies
        # the buffer and further stores keep retiring (§5.1).
        self.sb.append(_SbSlot(addr, self.clock + result.latency,
                               missed=True, faulted=True))

    def _do_sync(self) -> None:
        self.stats.syncs += 1
        if any(s.faulted for s in self.sb):
            # The fence blocks on the buffer; draining it surfaces the
            # pending imprecise exceptions first (§5.4).
            self._imprecise_exception()
        drain = max((s.drain_end for s in self.sb), default=0.0)
        self.clock = max(self.clock, drain, self.last_load_complete) + 1
        self.sb.clear()
        self.rob.append(self.clock)
        tel = self.tel
        if tel.enabled:
            # Workloads mark request boundaries with syncs, so the
            # inter-sync interval is the Tailbench-style request
            # latency (p50/p99 come off this histogram).
            tel.histogram("timing.request_cycles").observe(
                self.clock - self._last_sync_clock)
        self._last_sync_clock = self.clock

    def finalize(self) -> None:
        """End of trace: surface any still-undetected denials."""
        faulted = [s for s in self.sb if s.faulted]
        if faulted:
            self.clock = max(self.clock,
                             max(s.drain_end for s in faulted))
            self._imprecise_exception()
            self.stats.cycles = max(self.stats.cycles, self.clock)

    # ------------------------------------------------------------------
    # Batched fast path
    # ------------------------------------------------------------------
    def _scan_mins(self) -> Tuple[float, float]:
        """(earliest faulted detection, earliest live drain) in the SB."""
        fault_min = _INF
        drain_min = _INF
        for s in self.sb:
            if s.faulted:
                if s.drain_end < fault_min:
                    fault_min = s.drain_end
            elif s.drain_end < drain_min:
                drain_min = s.drain_end
        return fault_min, drain_min

    def step_until(self, limit_clock: float, limit_id: int) -> None:
        """Instrumented batch: per-op :meth:`step` under the batched
        scheduler, so profiling runs emit spans/metrics that match the
        naive engine span for span."""
        cid = self.id
        trace = self.trace
        n = len(trace)
        while self.pos < n:
            clock = self.clock
            if clock > limit_clock or (clock == limit_clock
                                       and cid >= limit_id):
                return
            self.step()

    def replay_gen(self):
        """Generator replaying ops while this core is the earliest.

        Equivalent to the naive scheduler popping this core off its
        heap once per op: the loop keeps stepping while ``(clock, id)``
        stays lexicographically below the ``(limit_clock, limit_id)``
        received at the last yield, and yields control back whenever
        the limit is reached (typical batches are 1-3 ops, so the
        generator keeps the locals bound across scheduler handoffs
        instead of re-binding per batch).  The common op shapes (ALU,
        L1-hit load/store, quiet store-buffer insert) are inlined;
        rare paths — denials, exceptions, stalls — write the locals
        back, call the exact per-op methods the naive engine uses, and
        reload.  Cycle counts are bit-identical by construction: every
        arithmetic expression is evaluated in the same order on the
        same values.
        """
        cid = self.id
        trace = self.trace
        if not isinstance(trace, PackedTrace):
            trace = self.trace = PackedTrace.from_ops(trace)
        kinds = trace.kinds
        addrs = trace.addrs
        dep_mask = trace.dep_mask
        alu_runs = trace.alu_runs
        n = len(kinds)

        system = self.system
        hierarchy = system.hierarchy
        l1 = hierarchy.l1d[cid]
        l1_sets = l1._sets
        l1_nsets = l1._nsets
        l1_bb = l1._block_bytes
        l1_latency = system.config.l1d.latency
        hstats = hierarchy.stats
        stats = self.stats
        tracker = self.tracker
        pool = self._slot_pool

        model = self.model
        sc = model == ConsistencyModel.SC
        wc = model == ConsistencyModel.WC
        pc = model == ConsistencyModel.PC
        inv_width = 1.0 / self.width
        rob = self.rob
        # The deque is mutated only in place (never rebound), so the
        # bound methods skip an attribute lookup on every op.
        rob_popleft = rob.popleft
        rob_append = rob.append
        rob_capacity = self.rob_capacity
        sb = self.sb
        sb_capacity = self.sb_capacity
        checkpointed = self.checkpoint_cap is not None
        _len = len  # local binding: called once or twice per op

        pos = self.pos
        pos0 = pos
        clock = self.clock
        last_drain_end = self.last_drain_end
        last_load_complete = self.last_load_complete
        fault_min, drain_min = self._scan_mins()
        rob_len = _len(rob)  # tracked locally; refreshed after slow paths
        d_l1_hits = 0

        limit_clock, limit_id = yield

        while pos < n:
            kind = kinds[pos]
            if kind == ALU_B and fault_min == _INF:
                # Burn through the whole consecutive ALU run.  ALU ops
                # touch only private state (clock, ROB), so running
                # them before another core's earlier-clock memory ops
                # commutes — they are exempt from the scheduling limit
                # while no fault is pending (a pending imprecise
                # exception mutates the shared hierarchy through the
                # handler, so then the exact global order is kept and
                # ALU ops take the ordered path below).  Run ends are
                # precomputed per trace; entering a run mid-way (only
                # after a fault resolves) falls back to a C-speed scan.
                stop = alu_runs.get(pos)
                if stop is None:
                    match = _NON_ALU.search(kinds, pos)
                    stop = match.start() if match is not None else n
                while pos < stop:
                    pos += 1
                    clock += inv_width
                    if rob_len >= rob_capacity:
                        head = rob_popleft()
                        if head > clock:
                            clock = head
                    else:
                        rob_len += 1
                    rob_append(clock + 1)
                continue
            if clock > limit_clock or (clock == limit_clock
                                       and cid >= limit_id):
                # Another core is scheduled ahead of us: hand control
                # back, keeping every local alive for the next batch.
                self.clock = clock
                limit_clock, limit_id = yield
                continue
            op_index = pos
            pos += 1
            clock += inv_width
            if rob_len >= rob_capacity:
                head = rob_popleft()
                if head > clock:
                    clock = head
            else:
                rob_len += 1

            if kind == ALU_B:
                # Only reached with a pending fault (ordered path).
                rob_append(clock + 1)

            elif kind == LOAD_B:
                addr = addrs[op_index]
                issue = clock
                if dep_mask[op_index] and last_load_complete > issue:
                    issue = last_load_complete
                block_addr = addr // l1_bb
                tag = block_addr // l1_nsets
                cset = l1_sets[block_addr % l1_nsets]
                # Any resident block is a read hit, so pop+reinsert
                # does lookup()'s LRU touch in two dict ops, not three.
                block = cset.pop(tag, None)
                if block is not None:
                    d_l1_hits += 1
                    cset[tag] = block
                    complete = issue + l1_latency
                else:
                    result = hierarchy.access(cid, addr, False)
                    if result.denied:
                        self.pos = pos
                        self.clock = clock
                        self.last_drain_end = last_drain_end
                        self.last_load_complete = last_load_complete
                        self._precise_fault(addr)
                        result = hierarchy.access(cid, addr, False)
                        clock = self.clock
                        last_drain_end = self.last_drain_end
                        fault_min, drain_min = self._scan_mins()
                        rob_len = _len(rob) + 1  # this op's rob append is pending
                        if clock > issue:
                            issue = clock
                    complete = issue + result.latency
                last_load_complete = complete
                rob_append(complete)
                if tracker is not None:
                    tracker.on_load(int(issue), addr)

            elif kind == STORE_B:
                addr = addrs[op_index]
                if sc:
                    block_addr = addr // l1_bb
                    tag = block_addr // l1_nsets
                    cset = l1_sets[block_addr % l1_nsets]
                    block = cset.get(tag)
                    if block is not None and block.state == "M":
                        d_l1_hits += 1
                        del cset[tag]
                        cset[tag] = block
                        block.dirty = True
                        latency = l1_latency
                    else:
                        result = hierarchy.access(cid, addr, True)
                        if result.denied:
                            self.pos = pos
                            self.clock = clock
                            self.last_drain_end = last_drain_end
                            self.last_load_complete = last_load_complete
                            self._precise_fault(addr)
                            result = hierarchy.access(cid, addr, True)
                            clock = self.clock
                            last_drain_end = self.last_drain_end
                            fault_min, drain_min = self._scan_mins()
                            rob_len = _len(rob) + 1  # this op's rob append is pending
                        latency = result.latency
                    complete = (clock if clock > last_drain_end
                                else last_drain_end) + latency
                    last_drain_end = complete
                    rob_append(complete)
                else:
                    # _sb_wait_for_slot: drop drained entries (only
                    # when the earliest live drain has passed), then
                    # stall through the slow path if still full.
                    if drain_min <= clock:
                        kept = []
                        for s in sb:
                            if s.faulted or s.drain_end > clock:
                                kept.append(s)
                            else:
                                pool.append(s)
                        sb[:] = kept
                        drain_min = _INF
                        for s in kept:
                            if not s.faulted and s.drain_end < drain_min:
                                drain_min = s.drain_end
                    if _len(sb) >= sb_capacity:
                        self.pos = pos
                        self.clock = clock
                        self.last_drain_end = last_drain_end
                        self.last_load_complete = last_load_complete
                        self._sb_wait_for_slot()
                        clock = self.clock
                        last_drain_end = self.last_drain_end
                        fault_min, drain_min = self._scan_mins()
                        rob_len = _len(rob) + 1  # this op's rob append is pending

                    coalesced = False
                    if wc:
                        blk = addr >> 6
                        for s in sb:
                            if s.blk == blk:
                                rob_append(clock + 1)
                                coalesced = True
                                break
                    if not coalesced:
                        if checkpointed:
                            self.pos = pos
                            self.clock = clock
                            self.last_drain_end = last_drain_end
                            self.last_load_complete = last_load_complete
                            self._wait_for_checkpoint()
                            clock = self.clock
                        rob_append(clock + 1)  # retires into the buffer

                        block_addr = addr // l1_bb
                        tag = block_addr // l1_nsets
                        cset = l1_sets[block_addr % l1_nsets]
                        block = cset.get(tag)
                        denied = False
                        if block is not None and block.state == "M":
                            d_l1_hits += 1
                            del cset[tag]
                            cset[tag] = block
                            block.dirty = True
                            latency = l1_latency
                            missed = False
                        else:
                            result = hierarchy.access(cid, addr, True)
                            if result.denied:
                                self.pos = pos
                                self.clock = clock
                                self.last_drain_end = last_drain_end
                                self.last_load_complete = last_load_complete
                                self._store_denied(addr, result)
                                clock = self.clock
                                last_drain_end = self.last_drain_end
                                fault_min, drain_min = self._scan_mins()
                                rob_len = _len(rob)
                                denied = True
                            else:
                                latency = result.latency
                                missed = result.hit_level != "L1"
                        if not denied:
                            # Below the overlap limit only the live-miss
                            # flag is needed; at or above it, one pass
                            # also collects the drain ends (the overlap
                            # window).
                            live_miss = False
                            if _len(sb) < WC_DRAIN_OVERLAP:
                                for s in sb:
                                    if s.missed and s.drain_end > clock:
                                        live_miss = True
                                        break
                                drain_start = clock
                            else:
                                ends = []
                                for s in sb:
                                    de = s.drain_end
                                    ends.append(de)
                                    if s.missed and de > clock:
                                        live_miss = True
                                ends.sort()
                                ds = ends[-WC_DRAIN_OVERLAP]
                                drain_start = ds if ds > clock else clock
                            drain_end = drain_start + latency
                            if pc and last_drain_end + 1 > drain_end:
                                # PC commits in order (TSO).
                                drain_end = last_drain_end + 1
                            last_drain_end = drain_end
                            if not live_miss:
                                self._oldest_checkpoint_start = clock
                            if pool:
                                slot = pool.pop()
                                slot.addr = addr
                                slot.blk = addr >> 6
                                slot.drain_end = drain_end
                                slot.missed = missed
                                slot.faulted = False
                            else:
                                slot = _SbSlot(addr, drain_end, missed)
                            sb.append(slot)
                            if drain_end < drain_min:
                                drain_min = drain_end
                            if tracker is not None:
                                tracker.on_store_retire(
                                    int(clock), int(drain_end), missed,
                                    addr)

            else:  # SYNC
                if fault_min != _INF:
                    self.pos = pos
                    self.clock = clock
                    self.last_drain_end = last_drain_end
                    self.last_load_complete = last_load_complete
                    self._imprecise_exception()
                    clock = self.clock
                    last_drain_end = self.last_drain_end
                    fault_min, drain_min = self._scan_mins()
                    rob_len = _len(rob) + 1  # this op's rob append is pending
                drain = 0.0
                for s in sb:
                    if s.drain_end > drain:
                        drain = s.drain_end
                if drain > clock:
                    clock = drain
                if last_load_complete > clock:
                    clock = last_load_complete
                clock += 1
                pool.extend(sb)  # drained; nothing holds these slots
                sb.clear()
                drain_min = _INF
                fault_min = _INF
                rob_append(clock)
                self._last_sync_clock = clock

            # Deferred detection (naive: _check_detection per op).
            if fault_min <= clock:
                self.pos = pos
                self.clock = clock
                self.last_drain_end = last_drain_end
                self.last_load_complete = last_load_complete
                self._imprecise_exception()
                clock = self.clock
                last_drain_end = self.last_drain_end
                fault_min, drain_min = self._scan_mins()
                rob_len = _len(rob)

        self.pos = pos
        self.clock = clock
        self.last_drain_end = last_drain_end
        self.last_load_complete = last_load_complete
        # Op-class counts over the replayed range, at C speed (the
        # clock is monotone, so the final value is also the max).
        stats.instructions += n - pos0
        stats.loads += kinds.count(LOAD_B, pos0, n)
        stats.stores += kinds.count(STORE_B, pos0, n)
        stats.syncs += kinds.count(SYNC_B, pos0, n)
        if clock > stats.cycles:
            stats.cycles = clock
        if d_l1_hits:
            l1.hits += d_l1_hits
            hstats.l1_hits += d_l1_hits

    # ------------------------------------------------------------------
    # Exceptions
    # ------------------------------------------------------------------
    def _imprecise_exception(self) -> None:
        """Detection completed: FSB drain + flush + OS handler.

        Every unfinished store in the buffer (same-stream) drains to
        the FSB; all accumulated faulted entries are handled in one
        invocation — the batching effect of §5.3.
        """
        self.stats.imprecise_exceptions += 1
        cfg = self.system.config
        detect_clock = self.clock

        entries = list(self.sb)
        self.sb.clear()
        drain_cycles = 0
        for slot in entries:
            code = (ExceptionCode.EINJECT_BUS_ERROR
                    if self.system.einject.is_faulting(slot.addr)
                    else ExceptionCode.NONE)
            drain_cycles += self.interface.put(slot.addr, 0,
                                               error_code=code)
        uarch = drain_cycles + FLUSH_REFILL_CYCLES
        self.stats.uarch_cycles += uarch
        self.clock += uarch
        self.rob.clear()

        faults_before = sum(1 for e in self.interface.peek_all()
                            if e.is_faulting)
        self.stats.faulting_stores += faults_before

        def resolve(entry: FsbEntry) -> int:
            self.system.einject.mmio_clr(entry.addr)
            return cfg.os.resolve_fault_cycles

        def apply(entry: FsbEntry) -> None:
            self.system.hierarchy.access(self.id, entry.addr, True)

        invocation = self.system.handler.handle(self.interface, resolve,
                                                apply)
        costs = invocation.costs
        self.stats.os_apply_cycles += costs.os_apply
        self.stats.os_resolve_cycles += costs.os_resolve
        self.stats.os_other_cycles += costs.os_other
        self.clock += costs.total
        self.last_drain_end = self.clock

        tel = self.tel
        if tel.enabled:
            # The per-fault phase spans Figure 5 is recomputed from:
            # detect→drain→flush on the uarch side, then the handler's
            # dispatch/resolve/apply, laid end-to-end in cycle time.
            core = self.id
            t = detect_clock
            tel.record_span("fault.drain", t, t + drain_cycles,
                            track=SIM, lane=core,
                            attrs={"phase": "uarch",
                                   "faults": faults_before,
                                   "stores": len(entries)})
            t += drain_cycles
            tel.record_span("fault.flush", t, t + FLUSH_REFILL_CYCLES,
                            track=SIM, lane=core,
                            attrs={"phase": "uarch"})
            t += FLUSH_REFILL_CYCLES
            tel.record_span("fault.os_dispatch", t, t + costs.os_other,
                            track=SIM, lane=core,
                            attrs={"phase": "os_other"})
            t += costs.os_other
            tel.record_span("fault.os_resolve", t, t + costs.os_resolve,
                            track=SIM, lane=core,
                            attrs={"phase": "os_resolve",
                                   "resolved": invocation.faults_resolved})
            t += costs.os_resolve
            tel.record_span("fault.os_apply", t, t + costs.os_apply,
                            track=SIM, lane=core,
                            attrs={"phase": "os_apply",
                                   "stores": invocation.stores_handled})
            tel.sample("fsb.occupancy", len(entries),
                       ts=detect_clock + drain_cycles, track=SIM,
                       lane=core)
            tel.sample("fsb.occupancy", self.interface.pending,
                       ts=self.clock, track=SIM, lane=core)
            tel.counter("timing.imprecise_exceptions").inc()
            tel.counter("timing.faulting_stores").inc(faults_before)
            tel.histogram("fault.batch_stores").observe(len(entries))
            tel.histogram("fault.batch_faults").observe(faults_before)

    def _aso_rollback(self, addr: int) -> None:
        """ASO precise-exception path (§3.2): squash back to the
        checkpoint before the faulting store, pay the re-execution of
        everything speculated since, then take a normal precise trap
        and retry the store non-speculatively."""
        self.stats.precise_exceptions += 1
        cfg = self.system.config
        # Work speculated since the oldest live checkpoint is redone.
        live_starts = [s.drain_end for s in self.sb if s.missed]
        rollback_start = self.clock
        rollback = max(0.0, self.clock - self._oldest_checkpoint_start)
        self.stats.uarch_cycles += rollback + FLUSH_REFILL_CYCLES
        self.clock += rollback + FLUSH_REFILL_CYCLES
        self.sb.clear()
        self.rob.clear()
        self.system.einject.mmio_clr(addr)
        cost = (cfg.os.trap_entry_cycles + cfg.os.dispatch_cycles
                + cfg.os.resolve_fault_cycles
                + cfg.os.context_switch_cycles)
        self.stats.os_other_cycles += cost
        self.clock += cost
        tel = self.tel
        if tel.enabled:
            tel.record_span("fault.rollback", rollback_start,
                            rollback_start + rollback
                            + FLUSH_REFILL_CYCLES,
                            track=SIM, lane=self.id,
                            attrs={"phase": "uarch"})
            tel.record_span("fault.precise_trap", self.clock - cost,
                            self.clock, track=SIM, lane=self.id,
                            attrs={"phase": "os_other"})
            tel.counter("timing.precise_exceptions").inc()
        retry = self.system.hierarchy.access(self.id, addr, True)
        self.sb.append(_SbSlot(addr, self.clock + retry.latency,
                               missed=retry.hit_level != "L1"))
        self._oldest_checkpoint_start = self.clock

    def _precise_fault(self, addr: int) -> None:
        """A load/atomic (or SC store) was denied: precise handling."""
        self.stats.precise_exceptions += 1
        cfg = self.system.config
        # §5.3: drain the buffer first; faulting stores there go the
        # imprecise way before the precise handler runs.
        if any(s.faulted for s in self.sb):
            self._imprecise_exception()
        self.system.einject.mmio_clr(addr)
        cost = (cfg.os.trap_entry_cycles + cfg.os.dispatch_cycles
                + cfg.os.resolve_fault_cycles
                + cfg.os.context_switch_cycles)
        self.stats.os_other_cycles += cost
        self.clock += cost
        tel = self.tel
        if tel.enabled:
            tel.record_span("fault.precise_trap", self.clock - cost,
                            self.clock, track=SIM, lane=self.id,
                            attrs={"phase": "os_other", "addr": addr})
            tel.counter("timing.precise_exceptions").inc()


class TimingSystem:
    """Replays one trace per core against the shared hierarchy."""

    def __init__(self, config: SystemConfig,
                 traces: Sequence[Sequence[TraceOp]],
                 einject: Optional[EInject] = None,
                 handler: Optional[object] = None,
                 track_speculation: bool = False,
                 checkpoint_cap: Optional[int] = None,
                 early_detection_fraction: float = 0.0,
                 aso_precise: bool = False,
                 telemetry=None,
                 strategy: str = "fast") -> None:
        """``checkpoint_cap`` enables ASO-with-k-checkpoints mode:
        stores stall at retirement when ``k`` store misses are already
        outstanding, interpolating between the SC baseline (cap 0-ish)
        and full WC (cap = ∞).

        ``early_detection_fraction`` models the Qiu & Dubois
        prefetch-based alternative the paper discusses (§1's second
        approach): that fraction of store faults is discovered by a
        prefetch *before* the store retires, so it is handled as a
        conventional precise exception (no FSB flow) — at the price of
        the precise-trap cost and the prefetch traffic it implies.

        ``aso_precise`` models the paper's §3 alternative: ASO keeps
        exceptions *precise* by rolling the core back to the
        checkpoint taken before the faulting store and re-executing —
        so a fault pays a rollback (the speculated work since the
        checkpoint is squashed and redone) plus a conventional precise
        trap, but never uses the FSB.  Performance-wise this matches
        WC in the fault-free common case; the silicon bill is what
        Table 3 and the checkpoint sweep quantify.
        """
        if len(traces) > config.cores:
            raise ValueError(
                f"{len(traces)} traces for {config.cores} cores")
        if not (0.0 <= early_detection_fraction <= 1.0):
            raise ValueError("early_detection_fraction must be in [0,1]")
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r} (expected one of "
                f"{STRATEGIES})")
        if strategy != "naive":
            # Pack once up front: the batched engine reads columns, and
            # verify shares the packed traces with its naive shadow
            # (PackedTrace indexes back to TraceOp).
            traces = [PackedTrace.from_ops(t) for t in traces]
        self.strategy = strategy
        self._input_traces = traces
        self.config = config
        self.checkpoint_cap = checkpoint_cap
        self.early_detection_fraction = early_detection_fraction
        self.aso_precise = aso_precise
        #: Ambient telemetry unless one is supplied explicitly; the
        #: default NULL context makes every hook a cheap no-op.
        self.telemetry = (telemetry if telemetry is not None
                          else _telemetry())
        self.einject = einject or EInject()
        self.memory = MemoryController(config.memory, self.einject)
        self.hierarchy = CoherentHierarchy(config, self.memory)
        self.handler = handler or MinimalHandler(config.os)
        self.track_speculation = track_speculation
        self.cores = [
            _TimingCore(self, i, trace) for i, trace in enumerate(traces)
        ]

    def run(self) -> TimingResult:
        """Advance cores in time order until every trace is consumed."""
        if self.strategy == "verify":
            return self._run_verify()
        runner = self._run_fast if self.strategy == "fast" else self._run
        tel = self.telemetry
        if not tel.enabled:
            return runner()
        with tel.span("timing.run",
                      consistency=str(self.config.core.consistency),
                      cores=len(self.cores),
                      strategy=self.strategy):
            result = runner()
        tel.counter("timing.instructions").inc(
            result.total_instructions)
        return result

    def _result(self) -> TimingResult:
        spec = None
        if self.track_speculation:
            spec = [c.tracker.report() for c in self.cores
                    if c.tracker is not None]
        return TimingResult(
            config=self.config,
            core_stats=[c.stats for c in self.cores],
            speculation=spec,
        )

    def _run(self) -> TimingResult:
        """The naive per-op heap scheduler (the seed engine)."""
        heap = [(core.clock, core.id) for core in self.cores
                if not core.done]
        heapq.heapify(heap)
        while heap:
            _, core_id = heapq.heappop(heap)
            core = self.cores[core_id]
            if core.done:
                continue
            core.step()
            if not core.done:
                heapq.heappush(heap, (core.clock, core.id))
            else:
                core.finalize()
        return self._result()

    def _run_fast(self) -> TimingResult:
        """Batched scheduler: run the earliest core until the next
        core's ``(clock, id)`` would be scheduled ahead of it — the
        same interleaving the heap produces, without a heap operation
        per op."""
        active = [c for c in self.cores if c.pos < len(c.trace)]
        if self.telemetry.enabled:
            # Instrumented replay: per-op step(), batched scheduling.
            while active:
                if len(active) == 1:
                    core = active[0]
                    core.step_until(_INF, -1)
                    core.finalize()
                    del active[0]
                    continue
                best, next_clock, next_id = self._pick(active)
                best.step_until(next_clock, next_id)
                if best.pos >= len(best.trace):
                    best.finalize()
                    active.remove(best)
            return self._result()

        gens = {}
        for core in active:
            gen = core.replay_gen()
            next(gen)  # prime to the first yield (no ops processed)
            gens[core.id] = gen
        while active:
            n_active = len(active)
            if n_active == 1:
                core = active[0]
                try:
                    gens[core.id].send((_INF, -1))
                except StopIteration:
                    pass
                core.finalize()
                del active[0]
            elif n_active == 2:
                # The dominant shape (Figure 6 runs 2 cores): inline
                # ping-pong, no selection scan per batch.
                a, b = active
                ga, gb = gens[a.id], gens[b.id]
                aid, bid = a.id, b.id
                while True:
                    ac = a.clock
                    bc = b.clock
                    if ac < bc or (ac == bc and aid < bid):
                        try:
                            ga.send((bc, bid))
                        except StopIteration:
                            a.finalize()
                            active.remove(a)
                            break
                    else:
                        try:
                            gb.send((ac, aid))
                        except StopIteration:
                            b.finalize()
                            active.remove(b)
                            break
            else:
                best, next_clock, next_id = self._pick(active)
                try:
                    gens[best.id].send((next_clock, next_id))
                except StopIteration:
                    best.finalize()
                    active.remove(best)
        return self._result()

    @staticmethod
    def _pick(active: List[_TimingCore]) -> Tuple[_TimingCore, float, int]:
        """The earliest core by ``(clock, id)`` and the runner-up key."""
        best = None
        best_clock = best_id = 0.0
        next_clock, next_id = _INF, -1
        for c in active:
            clock, cid = c.clock, c.id
            if best is None or clock < best_clock or (
                    clock == best_clock and cid < best_id):
                if best is not None:
                    next_clock, next_id = best_clock, best_id
                best, best_clock, best_id = c, clock, cid
            elif clock < next_clock or (clock == next_clock
                                        and cid < next_id):
                next_clock, next_id = clock, cid
        return best, next_clock, next_id

    def _run_verify(self) -> TimingResult:
        """Run the naive engine on a shadow system, then the fast
        engine here, and assert bit-identical results."""
        from ..obs.telemetry import NullTelemetry
        shadow = TimingSystem(
            self.config, self._input_traces,
            einject=copy.deepcopy(self.einject),
            handler=copy.deepcopy(self.handler),
            track_speculation=self.track_speculation,
            checkpoint_cap=self.checkpoint_cap,
            early_detection_fraction=self.early_detection_fraction,
            aso_precise=self.aso_precise,
            telemetry=NullTelemetry(),
            strategy="naive")
        naive_result = shadow.run()
        self.strategy = "fast"
        try:
            fast_result = self.run()
        finally:
            self.strategy = "verify"
        for i, (a, b) in enumerate(zip(naive_result.core_stats,
                                       fast_result.core_stats)):
            if a != b:
                raise AssertionError(
                    f"verify: core {i} stats diverge\n"
                    f"  naive: {a}\n  fast:  {b}")
        if shadow.hierarchy.stats != self.hierarchy.stats:
            raise AssertionError(
                f"verify: hierarchy stats diverge\n"
                f"  naive: {shadow.hierarchy.stats}\n"
                f"  fast:  {self.hierarchy.stats}")
        return fast_result


def run_trace(config: SystemConfig,
              traces: Sequence[Sequence[TraceOp]],
              einject: Optional[EInject] = None,
              handler: Optional[object] = None,
              track_speculation: bool = False,
              checkpoint_cap: Optional[int] = None,
              telemetry=None,
              strategy: str = "fast") -> TimingResult:
    """One-shot convenience wrapper."""
    return TimingSystem(config, traces, einject, handler,
                        track_speculation, checkpoint_cap,
                        telemetry=telemetry, strategy=strategy).run()
