"""ASO-style post-retirement speculation state accounting (paper §3).

ASO (store-wait-free multiprocessors, Wenisch et al.) lets an SC core
match WC performance by checkpointing and speculatively retiring past
stalled stores.  The silicon bill per core (§3.3):

* the *scalable store buffer* — 16 B per speculatively retired store;
* one *checkpoint* per outstanding store miss, each needing a map
  table (32 logical→physical mappings at 8-10 bits each) plus up to
  32 extra physical registers (256 B) held until the checkpoint
  merges;
* per-word *Speculatively Written* (SW) and valid bits in the L1D and
  *Speculatively Read* (SR) bits in L1D and L2 for every block touched
  during speculation.

The tracker is fed by the WC timing run (ASO's goal is exactly WC
performance, so the WC execution tells us how much speculation the SC
core would need): by Little's law the number of live checkpoints is
the store-miss arrival rate × store-miss latency, which is why 2×
memory latency barely moves the requirement (loads slow the arrival
rate down too) while 4× store-to-load skew inflates it (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


@dataclass
class SpeculationStateConfig:
    """Per-structure sizing (paper §3.3 numbers)."""

    ssb_entry_bytes: int = 16
    registers_per_checkpoint: int = 32
    register_bytes: int = 8                 # 64-bit registers
    map_table_entries: int = 32
    map_table_entry_bits: int = 10          # 256-1024 entry PRF index
    #: SR/SW/valid bits: 2 bits per 8-byte word, 8 words per block, in
    #: L1D, plus SR bits in L2 -> ~3 B of metadata per tracked block.
    block_tracking_bytes: int = 3

    @property
    def checkpoint_bytes(self) -> int:
        map_table = (self.map_table_entries * self.map_table_entry_bits + 7) // 8
        regs = self.registers_per_checkpoint * self.register_bytes
        return map_table + regs


@dataclass
class SpeculationSnapshot:
    """Speculation state at one instant."""

    ssb_entries: int
    checkpoints: int
    tracked_blocks: int

    def bytes_total(self, cfg: SpeculationStateConfig) -> int:
        return (self.ssb_entries * cfg.ssb_entry_bytes
                + self.checkpoints * cfg.checkpoint_bytes
                + self.tracked_blocks * cfg.block_tracking_bytes)


@dataclass
class SpeculationReport:
    """Aggregated per-core requirement for one run."""

    peak_bytes: int
    peak_checkpoints: int
    peak_ssb_entries: int
    peak_tracked_blocks: int
    samples: int

    @property
    def peak_kb(self) -> float:
        return self.peak_bytes / 1024.0


class SpeculationTracker:
    """Tracks one core's would-be ASO state during a WC timing run.

    The timing engine reports store misses (with completion times) and
    block touches; the tracker maintains the live-checkpoint set and
    block set and records the high-water mark of the byte total.
    """

    BLOCK_BITS = 6  # 64-byte blocks

    def __init__(self, config: Optional[SpeculationStateConfig] = None) -> None:
        self.config = config or SpeculationStateConfig()
        #: (start, end) of outstanding store misses (live checkpoints).
        self._live_misses: List[Tuple[int, int]] = []
        #: Drain-end times of buffered stores (SSB occupancy).
        self._ssb_ends: List[int] = []
        #: Blocks speculatively touched, by last-touch time; pruned to
        #: the oldest live checkpoint (earlier state has merged).
        self._blocks: Dict[int, int] = {}
        self._peak = SpeculationSnapshot(0, 0, 0)
        self._peak_bytes = 0
        self._samples = 0

    # ------------------------------------------------------------------
    def _expire(self, now: int) -> None:
        self._live_misses = [(s, e) for (s, e) in self._live_misses
                             if e > now]
        self._ssb_ends = [e for e in self._ssb_ends if e > now]
        if not self._live_misses:
            self._blocks.clear()
            return
        oldest_start = min(s for (s, _) in self._live_misses)
        if len(self._blocks) > 4 * len(self._live_misses):
            self._blocks = {
                b: t for b, t in self._blocks.items() if t >= oldest_start
            }

    def on_store_retire(self, now: int, drain_end: int, missed: bool,
                        addr: int) -> None:
        """A store retired speculatively.

        Under the SC baseline any store that is not an L1 hit with
        write permission stalls retirement, so ASO opens a checkpoint
        for it (``missed``).  The store occupies the scalable store
        buffer until it can drain non-speculatively — no earlier than
        its own completion *and* the resolution of every older live
        checkpoint (ASO drains checkpoints atomically, in order).
        """
        self._expire(now)
        if missed:
            self._live_misses.append((now, drain_end))
        self._blocks[addr >> self.BLOCK_BITS] = now
        ssb_end = drain_end
        if self._live_misses:
            ssb_end = max(ssb_end, max(e for (_, e) in self._live_misses))
        self._ssb_ends.append(ssb_end)
        self._sample(now)

    def on_load(self, now: int, addr: int) -> None:
        self._expire(now)
        if self._live_misses:
            self._blocks[addr >> self.BLOCK_BITS] = now
            self._sample(now)

    def _sample(self, now: int) -> None:
        self._samples += 1
        snap = SpeculationSnapshot(
            ssb_entries=len(self._ssb_ends),
            checkpoints=len(self._live_misses),
            tracked_blocks=len(self._blocks),
        )
        total = snap.bytes_total(self.config)
        if total > self._peak_bytes:
            self._peak_bytes = total
            self._peak = snap

    # ------------------------------------------------------------------
    def report(self) -> SpeculationReport:
        return SpeculationReport(
            peak_bytes=self._peak_bytes,
            peak_checkpoints=self._peak.checkpoints,
            peak_ssb_entries=self._peak.ssb_entries,
            peak_tracked_blocks=self._peak.tracked_blocks,
            samples=self._samples,
        )
