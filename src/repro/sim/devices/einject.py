"""EInject — the error/poison injection device (paper §6.2).

EInject models the imprecise exceptions a near-memory accelerator
might generate.  It monitors transactions between the LLC and memory;
for addresses inside its reserved region it consults a per-4KB-page
bitmap, and if the target page is marked faulting it terminates the
transaction with a bus error (``denied``).

Software manages the bitmap through two MMIO registers, ``set`` and
``clr``: writing an address marks/unmarks the enclosing page.  The
litmus and workload front-ends use exactly this interface, like the
paper's Linux driver does via ``ioctl``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

PAGE_BITS = 12
PAGE_SIZE = 1 << PAGE_BITS

#: Exception code for an EInject bus error (reserved ISA code, §5.3).
EINJECT_ERROR_CODE = 0x1F


@dataclass
class InjectVerdict:
    denied: bool
    error_code: int = 0


class EInject:
    """Fault-injection device with a page-granular bitmap."""

    def __init__(self, region_base: int = 0, region_size: Optional[int] = None) -> None:
        """``region_base``/``region_size`` bound the memory EInject
        monitors; accesses outside pass through untouched.  A ``None``
        size means the whole address space (convenient for tests)."""
        self.region_base = region_base
        self.region_size = region_size
        self._faulting_pages: Set[int] = set()
        self.checks = 0
        self.denials = 0
        self.set_writes = 0
        self.clr_writes = 0

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    @staticmethod
    def page_of(addr: int) -> int:
        return addr >> PAGE_BITS

    def in_region(self, addr: int) -> bool:
        if self.region_size is None:
            return addr >= self.region_base
        return self.region_base <= addr < self.region_base + self.region_size

    # ------------------------------------------------------------------
    # MMIO register interface
    # ------------------------------------------------------------------
    def mmio_set(self, addr: int) -> None:
        """Write to the `set` register: mark addr's page faulting."""
        if not self.in_region(addr):
            raise ValueError(f"address 0x{addr:x} outside EInject region")
        self.set_writes += 1
        self._faulting_pages.add(self.page_of(addr))

    def mmio_clr(self, addr: int) -> None:
        """Write to the `clr` register: mark addr's page non-faulting."""
        self.clr_writes += 1
        self._faulting_pages.discard(self.page_of(addr))

    # ------------------------------------------------------------------
    # Transaction monitoring (called by the memory controller)
    # ------------------------------------------------------------------
    def check(self, addr: int) -> InjectVerdict:
        self.checks += 1
        if self.in_region(addr) and self.page_of(addr) in self._faulting_pages:
            self.denials += 1
            return InjectVerdict(denied=True, error_code=EINJECT_ERROR_CODE)
        return InjectVerdict(denied=False)

    def is_faulting(self, addr: int) -> bool:
        return self.in_region(addr) and self.page_of(addr) in self._faulting_pages

    @property
    def faulting_page_count(self) -> int:
        return len(self._faulting_pages)

    def clear_all(self) -> None:
        self._faulting_pages.clear()

    def mark_range(self, base: int, size: int) -> int:
        """Mark every page overlapping [base, base+size) as faulting.

        Returns the number of pages marked — the litmus harness uses
        this to poison a whole test's memory before running it (§6.3).
        """
        first = self.page_of(base)
        last = self.page_of(base + max(0, size - 1))
        for page in range(first, last + 1):
            self.mmio_set(page << PAGE_BITS)
        return last - first + 1
