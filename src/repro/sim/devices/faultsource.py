"""Imprecise-exception sources beyond EInject (paper §2.2).

The paper's design assumes "a generic hardware component situated in
the cache hierarchy" that can deny memory transactions.  EInject is
the prototype's synthetic instance; this module adds models of the
two motivating examples so the same FSB/FSBC/handler machinery can be
exercised against realistic fault generators:

* :class:`TakoAccelerator` — a täkō-style semi-programmable data
  transformation engine on the miss path.  Accesses to pages it
  manages run a user-defined callback (e.g. decompression); the
  callback faults when its metadata page is absent (a page fault in
  the callback's address space) and, optionally, on malformed data
  (divide-by-zero — irrecoverable).
* :class:`MidgardLateTranslation` — a Midgard-style intermediate
  address space: the VMA-level (front-side) translation has already
  succeeded, but the page-level translation at the LLC boundary can
  still miss, yielding a late page fault on a retired store.

Both implement the EInject duck-type the engines consume:
``check(addr)`` (transaction monitoring), ``is_faulting(addr)``
(functional-engine probe), and ``mmio_clr(addr)`` (the OS-side
resolution hook).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from ...core.exceptions import ExceptionCode
from ..vm.pagetable import FaultType, PageTable
from .einject import InjectVerdict, PAGE_BITS


class TakoAccelerator:
    """A täkō-style engine: software-defined callbacks on the miss
    path, which may themselves fault.

    Args:
        managed_base/managed_size: the address range whose misses run
            the callback (the compressed heap).
        metadata_absent_pages: pages whose callback currently lacks
            resident metadata — accessing them faults until the OS
            provides it (``mmio_clr`` = pin the metadata).
        poison_pages: pages whose content makes the callback divide by
            zero — irrecoverable; the OS terminates the app.
    """

    def __init__(self, managed_base: int, managed_size: int,
                 metadata_absent_pages: Optional[Set[int]] = None,
                 poison_pages: Optional[Set[int]] = None) -> None:
        self.managed_base = managed_base
        self.managed_size = managed_size
        self._absent = set(metadata_absent_pages or ())
        self._poison = set(poison_pages or ())
        self.transformations = 0     # successful callback runs
        self.faults = 0
        self.poison_hits = 0

    # ------------------------------------------------------------------
    def _page(self, addr: int) -> int:
        return addr >> PAGE_BITS

    def manages(self, addr: int) -> bool:
        return (self.managed_base <= addr
                < self.managed_base + self.managed_size)

    def mark_metadata_absent(self, addr: int) -> None:
        self._absent.add(self._page(addr))

    def mark_poison(self, addr: int) -> None:
        self._poison.add(self._page(addr))

    # ------------------------------------------------------------------
    # EInject-compatible surface
    # ------------------------------------------------------------------
    def check(self, addr: int) -> InjectVerdict:
        if not self.manages(addr):
            return InjectVerdict(denied=False)
        page = self._page(addr)
        if page in self._poison:
            self.poison_hits += 1
            return InjectVerdict(denied=True,
                                 error_code=int(ExceptionCode.ACCEL_DIVIDE))
        if page in self._absent:
            self.faults += 1
            return InjectVerdict(denied=True,
                                 error_code=int(ExceptionCode.PAGE_FAULT_LAZY))
        self.transformations += 1
        return InjectVerdict(denied=False)

    def is_faulting(self, addr: int) -> bool:
        if not self.manages(addr):
            return False
        page = self._page(addr)
        return page in self._absent or page in self._poison

    def mmio_clr(self, addr: int) -> None:
        """OS resolution: pin the callback metadata for this page.

        Poisoned pages cannot be resolved this way — the fault is
        irrecoverable (divide-by-zero in user callback logic).
        """
        self._absent.discard(self._page(addr))

    @property
    def faulting_page_count(self) -> int:
        return len(self._absent) + len(self._poison)


class MidgardLateTranslation:
    """Midgard-style back-side translation at the LLC boundary.

    The front-side (VMA-level) translation already succeeded, so the
    access reached the cache hierarchy; on an LLC miss the page-level
    translation runs here and may fault — after the store retired.
    ``mmio_clr`` models the OS page-fault handler making the page
    present.
    """

    def __init__(self, page_table: PageTable) -> None:
        self.page_table = page_table
        self.translations = 0
        self.late_faults = 0

    _FAULT_CODES = {
        FaultType.NOT_PRESENT_LAZY: ExceptionCode.PAGE_FAULT_LAZY,
        FaultType.NOT_PRESENT_SWAPPED: ExceptionCode.PAGE_FAULT_SWAPPED,
        FaultType.PROTECTION: ExceptionCode.PROTECTION,
        FaultType.UNMAPPED: ExceptionCode.SEGFAULT,
    }

    def check(self, addr: int) -> InjectVerdict:
        self.translations += 1
        result = self.page_table.translate(addr, is_write=False)
        if result.fault is FaultType.NONE:
            return InjectVerdict(denied=False)
        self.late_faults += 1
        return InjectVerdict(
            denied=True,
            error_code=int(self._FAULT_CODES[result.fault]))

    def is_faulting(self, addr: int) -> bool:
        entry = self.page_table.entry(addr)
        return entry is None or not entry.present

    def mmio_clr(self, addr: int) -> None:
        """OS page-fault resolution: map/populate the page."""
        entry = self.page_table.entry(addr)
        if entry is None:
            self.page_table.map_page(addr)
        else:
            self.page_table.make_present(addr)

    @property
    def faulting_page_count(self) -> int:
        return sum(1 for _ in ())  # unknown a priori; kept for parity


class CompositeFaultSource:
    """Several fault sources monitoring disjoint regions.

    The first source that denies wins; ``mmio_clr`` is broadcast
    (resolution is idempotent for non-owners).
    """

    def __init__(self, *sources) -> None:
        self.sources = list(sources)

    def check(self, addr: int) -> InjectVerdict:
        for source in self.sources:
            verdict = source.check(addr)
            if verdict.denied:
                return verdict
        return InjectVerdict(denied=False)

    def is_faulting(self, addr: int) -> bool:
        return any(s.is_faulting(addr) for s in self.sources)

    def mmio_clr(self, addr: int) -> None:
        for source in self.sources:
            source.mmio_clr(addr)
