"""Instruction traces for the timing engine.

The performance experiments (Table 3, Figures 5-6) are trace-driven,
like the paper's QFlex runs: workload models emit per-core streams of
:class:`TraceOp` and the timing engine replays them against the cache
hierarchy and store-buffer model.

Op kinds:

* ``L`` — load from ``addr``; ``dep`` marks it data-dependent on the
  previous load (pointer chasing — serialises memory-level
  parallelism).
* ``S`` — store to ``addr``.
* ``A`` — non-memory (ALU/branch/other) work.
* ``F`` — synchronisation (fence/atomic); drains the store buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, NamedTuple, Sequence


class TraceOp(NamedTuple):
    kind: str      # 'L' | 'S' | 'A' | 'F'
    addr: int = 0
    dep: bool = False


LOAD, STORE, ALU, SYNC = "L", "S", "A", "F"
_VALID_KINDS = frozenset({LOAD, STORE, ALU, SYNC})


@dataclass
class InstructionMix:
    """Fractions of each class, Table 3 left columns."""

    store: float
    load: float
    sync: float
    other: float

    def as_percentages(self) -> Dict[str, float]:
        return {
            "Store": 100 * self.store,
            "Load": 100 * self.load,
            "Sync": 100 * self.sync,
            "Others": 100 * self.other,
        }

    def validate(self) -> None:
        total = self.store + self.load + self.sync + self.other
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"mix sums to {total}, expected 1.0")


def measure_mix(trace: Sequence[TraceOp]) -> InstructionMix:
    """Measure the instruction mix of a trace."""
    if not trace:
        return InstructionMix(0.0, 0.0, 0.0, 0.0)
    counts = {k: 0 for k in _VALID_KINDS}
    for op in trace:
        counts[op.kind] += 1
    n = len(trace)
    return InstructionMix(
        store=counts[STORE] / n,
        load=counts[LOAD] / n,
        sync=counts[SYNC] / n,
        other=counts[ALU] / n,
    )


def validate_trace(trace: Iterable[TraceOp]) -> int:
    """Check op kinds; returns the length."""
    n = 0
    for op in trace:
        if op.kind not in _VALID_KINDS:
            raise ValueError(f"bad trace op kind {op.kind!r} at index {n}")
        n += 1
    return n
