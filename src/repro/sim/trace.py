"""Instruction traces for the timing engine.

The performance experiments (Table 3, Figures 5-6) are trace-driven,
like the paper's QFlex runs: workload models emit per-core streams of
:class:`TraceOp` and the timing engine replays them against the cache
hierarchy and store-buffer model.

Op kinds:

* ``L`` — load from ``addr``; ``dep`` marks it data-dependent on the
  previous load (pointer chasing — serialises memory-level
  parallelism).
* ``S`` — store to ``addr``.
* ``A`` — non-memory (ALU/branch/other) work.
* ``F`` — synchronisation (fence/atomic); drains the store buffer.
"""

from __future__ import annotations

import hashlib
import json
import re
import struct
import sys
import zlib
from array import array
from dataclasses import dataclass, field
from typing import (Dict, Iterable, Iterator, List, NamedTuple, Optional,
                    Sequence, Tuple)


class TraceOp(NamedTuple):
    kind: str      # 'L' | 'S' | 'A' | 'F'
    addr: int = 0
    dep: bool = False


LOAD, STORE, ALU, SYNC = "L", "S", "A", "F"
_VALID_KINDS = frozenset({LOAD, STORE, ALU, SYNC})

#: Byte values of the op kinds, for packed (columnar) traces.
LOAD_B, STORE_B, ALU_B, SYNC_B = ord(LOAD), ord(STORE), ord(ALU), ord(SYNC)
_KIND_FROM_BYTE = {LOAD_B: LOAD, STORE_B: STORE, ALU_B: ALU, SYNC_B: SYNC}

#: One match per consecutive ALU run in a packed ``kinds`` bytestring.
_ALU_RUN = re.compile(b"[" + ALU.encode("ascii") + b"]+")


class PackedTrace:
    """Columnar trace: one bytes/array per :class:`TraceOp` field.

    The replay engine's inner loop reads ``kinds[i]`` (an int byte) and
    ``addrs[i]`` directly instead of allocating a ``TraceOp`` per op,
    and the columns round-trip to the on-disk artifact as flat byte
    blobs (``array.frombytes`` — no per-op Python decode).  Indexing
    still yields :class:`TraceOp`, so anything written against a plain
    op sequence (the naive engine, ``measure_mix``, tests) works
    unchanged.
    """

    __slots__ = ("kinds", "addrs", "deps", "_dep_mask", "_alu_runs")

    def __init__(self, kinds: bytes, addrs: List[int],
                 deps: frozenset) -> None:
        if len(kinds) != len(addrs):
            raise ValueError(
                f"column length mismatch: {len(kinds)} kinds, "
                f"{len(addrs)} addrs")
        self.kinds = kinds
        self.addrs = addrs     # plain list: fastest repeated indexing
        self.deps = deps       # indices of ops with dep=True
        self._dep_mask: Optional[bytes] = None
        self._alu_runs: Optional[Dict[int, int]] = None

    @property
    def dep_mask(self) -> bytes:
        """``mask[i]`` is 1 iff op ``i`` has ``dep=True`` — an O(1)
        per-op lookup for the replay inner loop (a ``bytes`` index is
        cheaper than a frozenset probe).  Built once, then cached."""
        mask = self._dep_mask
        if mask is None:
            raw = bytearray(len(self.kinds))
            for i in self.deps:
                raw[i] = 1
            mask = self._dep_mask = bytes(raw)
        return mask

    @property
    def alu_runs(self) -> Dict[int, int]:
        """Maps the start index of every consecutive ALU run to its end
        (exclusive), found in one C-speed regex sweep and cached; the
        replay loop burns through a whole run per lookup."""
        runs = self._alu_runs
        if runs is None:
            runs = self._alu_runs = {
                m.start(): m.end()
                for m in _ALU_RUN.finditer(self.kinds)}
        return runs

    @classmethod
    def from_ops(cls, ops: Sequence[TraceOp]) -> "PackedTrace":
        if isinstance(ops, PackedTrace):
            return ops
        kinds = "".join(op.kind for op in ops).encode("ascii")
        addrs = [op.addr for op in ops]
        deps = frozenset(i for i, op in enumerate(ops) if op.dep)
        return cls(kinds, addrs, deps)

    def __len__(self) -> int:
        return len(self.kinds)

    def __getitem__(self, i: int) -> TraceOp:
        if i < 0:
            i += len(self.kinds)
        return TraceOp(_KIND_FROM_BYTE[self.kinds[i]], self.addrs[i],
                       i in self.deps)

    def __iter__(self) -> Iterator[TraceOp]:
        deps = self.deps
        kind_map = _KIND_FROM_BYTE
        for i, (k, a) in enumerate(zip(self.kinds, self.addrs)):
            yield TraceOp(kind_map[k], a, i in deps)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PackedTrace):
            return NotImplemented
        return (self.kinds == other.kinds and self.addrs == other.addrs
                and self.deps == other.deps)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PackedTrace ops={len(self.kinds)}>"


# ----------------------------------------------------------------------
# On-disk trace artifact (repro.trace/v1)
# ----------------------------------------------------------------------
#
# Layout:  magic ``RTRC`` · u32 header length · header JSON · zlib body.
# The body decompresses to the *canonical payload*: for each core, a
# ``(n_ops, n_deps)`` u64 pair followed by the kinds bytes, the
# little-endian i64 address column, and the little-endian u64 dep-index
# column.  The header records the schema tag, per-core op counts, the
# sha256 of the canonical payload (compression-independent — this is
# the content digest capture/replay compare), and caller metadata.

TRACE_SCHEMA = "repro.trace/v1"
TRACE_MAGIC = b"RTRC"
_U32 = struct.Struct(">I")
_CORE_HEADER = struct.Struct("<QQ")


def _canonical_columns(trace: Sequence[TraceOp]) -> Tuple[bytes, bytes, bytes]:
    packed = PackedTrace.from_ops(trace)
    addrs = array("q", packed.addrs)
    deps = array("q", sorted(packed.deps))
    if sys.byteorder == "big":  # canonical payload is little-endian
        addrs.byteswap()
        deps.byteswap()
    return packed.kinds, addrs.tobytes(), deps.tobytes()


def _canonical_payload(traces: Sequence[Sequence[TraceOp]]) -> bytes:
    chunks: List[bytes] = []
    for trace in traces:
        kinds, addr_bytes, dep_bytes = _canonical_columns(trace)
        chunks.append(_CORE_HEADER.pack(len(kinds), len(dep_bytes) // 8))
        chunks.append(kinds)
        chunks.append(addr_bytes)
        chunks.append(dep_bytes)
    return b"".join(chunks)


def trace_digest(traces: Sequence[Sequence[TraceOp]]) -> str:
    """sha256 of the canonical payload — the artifact content digest."""
    return hashlib.sha256(_canonical_payload(traces)).hexdigest()


def encode_trace_artifact(traces: Sequence[Sequence[TraceOp]],
                          meta: Optional[Dict] = None,
                          level: int = 6) -> bytes:
    """Serialise per-core op streams to a ``repro.trace/v1`` blob."""
    payload = _canonical_payload(traces)
    header = {
        "schema": TRACE_SCHEMA,
        "cores": len(traces),
        "ops": [len(t) for t in traces],
        "digest": hashlib.sha256(payload).hexdigest(),
        "meta": dict(meta or {}),
    }
    header_bytes = json.dumps(header, sort_keys=True,
                              separators=(",", ":")).encode("utf-8")
    return b"".join([TRACE_MAGIC, _U32.pack(len(header_bytes)),
                     header_bytes, zlib.compress(payload, level)])


class TraceArtifactError(ValueError):
    """Raised when a trace artifact is malformed or corrupt."""


def read_artifact_header(data: bytes) -> Dict:
    """Parse and validate the header without touching the body."""
    if data[:4] != TRACE_MAGIC:
        raise TraceArtifactError("bad magic: not a repro trace artifact")
    (header_len,) = _U32.unpack_from(data, 4)
    try:
        header = json.loads(data[8:8 + header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceArtifactError(f"corrupt artifact header: {exc}") from exc
    if header.get("schema") != TRACE_SCHEMA:
        raise TraceArtifactError(
            f"unsupported trace schema {header.get('schema')!r} "
            f"(expected {TRACE_SCHEMA})")
    return header


def decode_trace_artifact(data: bytes) -> Tuple[Dict, List[PackedTrace]]:
    """Decode a blob back to ``(header, per-core packed traces)``.

    Verifies the content digest; raises :class:`TraceArtifactError` on
    any mismatch (the cache's invalidation rule: a stale or corrupt
    entry never replays silently).
    """
    header = read_artifact_header(data)
    (header_len,) = _U32.unpack_from(data, 4)
    try:
        payload = zlib.decompress(data[8 + header_len:])
    except zlib.error as exc:
        raise TraceArtifactError(f"corrupt artifact body: {exc}") from exc
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header["digest"]:
        raise TraceArtifactError(
            f"content digest mismatch: header says {header['digest'][:12]}…,"
            f" payload hashes to {digest[:12]}…")
    traces: List[PackedTrace] = []
    view = memoryview(payload)
    offset = 0
    for n_ops in header["ops"]:
        got_ops, n_deps = _CORE_HEADER.unpack_from(view, offset)
        if got_ops != n_ops:
            raise TraceArtifactError(
                f"op count mismatch: header {n_ops}, payload {got_ops}")
        offset += _CORE_HEADER.size
        kinds = bytes(view[offset:offset + n_ops])
        offset += n_ops
        addrs = array("q")
        addrs.frombytes(view[offset:offset + 8 * n_ops])
        offset += 8 * n_ops
        deps_arr = array("q")
        deps_arr.frombytes(view[offset:offset + 8 * n_deps])
        offset += 8 * n_deps
        if sys.byteorder == "big":
            addrs.byteswap()
            deps_arr.byteswap()
        traces.append(PackedTrace(kinds, addrs.tolist(),
                                  frozenset(deps_arr)))
    if offset != len(payload):
        raise TraceArtifactError(
            f"{len(payload) - offset} trailing payload bytes")
    return header, traces


@dataclass
class InstructionMix:
    """Fractions of each class, Table 3 left columns."""

    store: float
    load: float
    sync: float
    other: float

    def as_percentages(self) -> Dict[str, float]:
        return {
            "Store": 100 * self.store,
            "Load": 100 * self.load,
            "Sync": 100 * self.sync,
            "Others": 100 * self.other,
        }

    def validate(self) -> None:
        total = self.store + self.load + self.sync + self.other
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"mix sums to {total}, expected 1.0")


def measure_mix(trace: Sequence[TraceOp]) -> InstructionMix:
    """Measure the instruction mix of a trace."""
    if not trace:
        return InstructionMix(0.0, 0.0, 0.0, 0.0)
    counts = {k: 0 for k in _VALID_KINDS}
    for op in trace:
        counts[op.kind] += 1
    n = len(trace)
    return InstructionMix(
        store=counts[STORE] / n,
        load=counts[LOAD] / n,
        sync=counts[SYNC] / n,
        other=counts[ALU] / n,
    )


def validate_trace(trace: Iterable[TraceOp]) -> int:
    """Check op kinds; returns the length."""
    n = 0
    for op in trace:
        if op.kind not in _VALID_KINDS:
            raise ValueError(f"bad trace op kind {op.kind!r} at index {n}")
        n += 1
    return n
