"""2D-mesh interconnect model (Table 2: 4×4, 16-byte links, 3 cy/hop).

Tiles are numbered row-major; XY routing gives deterministic hop
counts.  The model is latency-oriented: callers ask for the traversal
latency between tiles and the mesh accounts messages/flits for stats.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..config import NocConfig


@dataclass
class MeshStats:
    messages: int = 0
    total_hops: int = 0
    flits: int = 0

    @property
    def avg_hops(self) -> float:
        return self.total_hops / self.messages if self.messages else 0.0


class Mesh:
    """XY-routed 2D mesh."""

    def __init__(self, config: NocConfig) -> None:
        self.config = config
        self.stats = MeshStats()
        # (src, dst, payload) -> (hops, flits, latency); the mesh is
        # static, so every traversal after the first per key is a
        # dict hit plus the stats increments.
        self._latency_cache: Dict[Tuple[int, int, int],
                                  Tuple[int, int, int]] = {}
        # Same idea for the request+response pair round_trip issues.
        self._round_trip_cache: Dict[Tuple[int, int, int],
                                     Tuple[int, int, int]] = {}

    def coordinates(self, tile: int) -> Tuple[int, int]:
        if not (0 <= tile < self.config.tiles):
            raise ValueError(f"tile {tile} out of range")
        return divmod(tile, self.config.cols)

    def hops(self, src: int, dst: int) -> int:
        (r1, c1), (r2, c2) = self.coordinates(src), self.coordinates(dst)
        return abs(r1 - r2) + abs(c1 - c2)

    def _entry(self, src: int, dst: int,
               payload_bytes: int) -> Tuple[int, int, int]:
        key = (src, dst, payload_bytes)
        entry = self._latency_cache.get(key)
        if entry is None:
            hop_count = self.hops(src, dst)
            serialization = max(
                0, (payload_bytes + self.config.link_bytes - 1)
                // self.config.link_bytes - 1)
            entry = (hop_count,
                     max(1, payload_bytes // self.config.link_bytes),
                     hop_count * self.config.hop_latency + serialization)
            self._latency_cache[key] = entry
        return entry

    def latency(self, src: int, dst: int, payload_bytes: int = 64) -> int:
        """One-way traversal latency, accounting serialization of the
        payload over 16-byte links."""
        hop_count, flits, total = self._entry(src, dst, payload_bytes)
        stats = self.stats
        stats.messages += 1
        stats.total_hops += hop_count
        stats.flits += flits
        return total

    def round_trip(self, src: int, dst: int, payload_bytes: int = 64) -> int:
        """Request (16-byte) out, ``payload_bytes`` response back."""
        key = (src, dst, payload_bytes)
        entry = self._round_trip_cache.get(key)
        if entry is None:
            h1, f1, t1 = self._entry(src, dst, 16)
            h2, f2, t2 = self._entry(dst, src, payload_bytes)
            entry = (h1 + h2, f1 + f2, t1 + t2)
            self._round_trip_cache[key] = entry
        hop_count, flits, total = entry
        stats = self.stats
        stats.messages += 2
        stats.total_hops += hop_count
        stats.flits += flits
        return total

    def home_tile(self, block_addr: int) -> int:
        """Static address-interleaved home (directory/L2 slice)."""
        return block_addr % self.config.tiles

    def max_distance_from(self, src: int) -> int:
        return max(self.hops(src, t) for t in range(self.config.tiles))
