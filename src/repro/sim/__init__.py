"""Simulation substrate.

Two execution vehicles, mirroring the paper's methodology:

* :mod:`repro.sim.multicore` — the functional-operational engine (the
  FPGA-prototype analogue): exact shared-memory visibility, seeded
  random interleaving, real FSB/FSBC/handler objects; used by the
  litmus harness.
* :mod:`repro.sim.timing` — the trace-driven timing engine (the QFlex
  analogue): OoO-interval core model over the MESI/mesh hierarchy;
  used by the performance experiments (Table 3, Figures 5-6).

Shared infrastructure: :mod:`~repro.sim.config` (Table 2),
:mod:`~repro.sim.isa` / :mod:`~repro.sim.program` (litmus-scale
programs), :mod:`~repro.sim.trace` (timing-scale traces), the cache /
NoC / memory / VM models, and the EInject device.
"""

from .config import (
    ConsistencyModel,
    CoreConfig,
    SystemConfig,
    small_config,
    table2_config,
)
from .devices.einject import EInject, PAGE_SIZE
from .engine import Engine, SimulationError
from .multicore import (
    CoreStatus,
    DeadlockError,
    MulticoreSystem,
    RunResult,
)
from .program import Program, ThreadProgram, make_program
from .timing import TimingResult, TimingSystem, run_trace
from .trace import InstructionMix, TraceOp, measure_mix

__all__ = [
    "ConsistencyModel", "CoreConfig", "SystemConfig", "small_config",
    "table2_config",
    "EInject", "PAGE_SIZE",
    "Engine", "SimulationError",
    "CoreStatus", "DeadlockError", "MulticoreSystem", "RunResult",
    "Program", "ThreadProgram", "make_program",
    "TimingResult", "TimingSystem", "run_trace",
    "InstructionMix", "TraceOp", "measure_mix",
]
