"""Page tables and translation faults.

A flat virtual→physical map with per-page permissions and presence
bits.  Demand paging and lazy allocation are expressed as pages that
are mapped-but-not-present; touching them raises a page fault whose
resolution latency the OS model charges (µs for lazy allocation, ms
for demand paging from storage — paper §4.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

PAGE_BITS = 12
PAGE_SIZE = 1 << PAGE_BITS


class FaultType(enum.Enum):
    NONE = "none"
    NOT_PRESENT_LAZY = "lazy-alloc"      # µs-scale fix-up
    NOT_PRESENT_SWAPPED = "demand-page"  # ms-scale IO
    PROTECTION = "protection"            # irrecoverable for the app
    UNMAPPED = "segfault"                # irrecoverable


@dataclass
class PageTableEntry:
    frame: int
    present: bool = True
    writable: bool = True
    swapped: bool = False


@dataclass
class TranslationResult:
    fault: FaultType
    physical: Optional[int] = None


class PageTable:
    """One address space's page table."""

    def __init__(self) -> None:
        self._entries: Dict[int, PageTableEntry] = {}
        self.faults: Dict[FaultType, int] = {t: 0 for t in FaultType}

    @staticmethod
    def vpn(vaddr: int) -> int:
        return vaddr >> PAGE_BITS

    def map_page(self, vaddr: int, frame: Optional[int] = None,
                 present: bool = True, writable: bool = True,
                 swapped: bool = False) -> PageTableEntry:
        vpn = self.vpn(vaddr)
        entry = PageTableEntry(
            frame=frame if frame is not None else vpn,
            present=present, writable=writable, swapped=swapped)
        self._entries[vpn] = entry
        return entry

    def unmap(self, vaddr: int) -> None:
        self._entries.pop(self.vpn(vaddr), None)

    def entry(self, vaddr: int) -> Optional[PageTableEntry]:
        return self._entries.get(self.vpn(vaddr))

    def translate(self, vaddr: int, is_write: bool = False) -> TranslationResult:
        entry = self._entries.get(self.vpn(vaddr))
        if entry is None:
            self.faults[FaultType.UNMAPPED] += 1
            return TranslationResult(FaultType.UNMAPPED)
        if not entry.present:
            fault = (FaultType.NOT_PRESENT_SWAPPED if entry.swapped
                     else FaultType.NOT_PRESENT_LAZY)
            self.faults[fault] += 1
            return TranslationResult(fault)
        if is_write and not entry.writable:
            self.faults[FaultType.PROTECTION] += 1
            return TranslationResult(FaultType.PROTECTION)
        physical = (entry.frame << PAGE_BITS) | (vaddr & (PAGE_SIZE - 1))
        return TranslationResult(FaultType.NONE, physical)

    def make_present(self, vaddr: int) -> None:
        """Resolve a not-present fault (lazy alloc / page-in)."""
        entry = self._entries.get(self.vpn(vaddr))
        if entry is None:
            raise KeyError(f"no mapping for 0x{vaddr:x}")
        entry.present = True
        entry.swapped = False

    @property
    def mapped_pages(self) -> int:
        return len(self._entries)
