"""MMU: TLB + page table, with late-translation support.

Two translation points exist, mirroring the paper's Midgard example
(§2.2): the *front-side* translation performed before the cache
hierarchy (always precise — load/store still in the pipeline) and the
*back-side* translation performed on an LLC miss, whose page faults
arrive after the store has retired — the imprecise case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import TlbConfig
from .pagetable import FaultType, PageTable, TranslationResult
from .tlb import Tlb, TlbResult


@dataclass
class MmuResult:
    fault: FaultType
    physical: Optional[int]
    latency: int
    tlb_level: str


class Mmu:
    """Per-core MMU front-end."""

    def __init__(self, config: TlbConfig, page_table: PageTable) -> None:
        self.tlb = Tlb(config)
        self.page_table = page_table

    def translate(self, vaddr: int, is_write: bool = False) -> MmuResult:
        tlb_result = self.tlb.lookup(vaddr)
        if tlb_result.frame is not None:
            # TLB hit: permissions still checked against the PTE.
            check = self.page_table.translate(vaddr, is_write)
            if check.fault is not FaultType.NONE:
                return MmuResult(check.fault, None, tlb_result.latency,
                                 tlb_result.level)
            return MmuResult(FaultType.NONE, check.physical,
                             tlb_result.latency, tlb_result.level)

        walk = self.page_table.translate(vaddr, is_write)
        if walk.fault is not FaultType.NONE:
            return MmuResult(walk.fault, None, tlb_result.latency, "WALK")
        entry = self.page_table.entry(vaddr)
        assert entry is not None
        self.tlb.fill(vaddr, entry.frame)
        return MmuResult(FaultType.NONE, walk.physical, tlb_result.latency,
                         "WALK")


class LateTranslationPoint:
    """Back-side (Midgard-style) translation at the LLC boundary.

    Used by scenario models where the page-based translation happens
    only on a cache-hierarchy miss and can fault long after the store
    retired.  Latency is charged by the hierarchy; this class only
    answers whether the access faults.
    """

    def __init__(self, page_table: PageTable) -> None:
        self.page_table = page_table
        self.late_faults = 0

    def check(self, vaddr: int, is_write: bool) -> TranslationResult:
        result = self.page_table.translate(vaddr, is_write)
        if result.fault is not FaultType.NONE:
            self.late_faults += 1
        return result
