"""Two-level TLB (Table 2: L1 48 entries, L2 1024 entries)."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from ..config import TlbConfig


class _LruTlb:
    """One TLB level: LRU, fully-associative (adequate at these sizes)."""

    def __init__(self, entries: int) -> None:
        self.capacity = entries
        self._map: "OrderedDict[int, int]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, vpn: int) -> Optional[int]:
        frame = self._map.get(vpn)
        if frame is None:
            self.misses += 1
            return None
        self._map.move_to_end(vpn)
        self.hits += 1
        return frame

    def insert(self, vpn: int, frame: int) -> None:
        if vpn in self._map:
            self._map.move_to_end(vpn)
        self._map[vpn] = frame
        if len(self._map) > self.capacity:
            self._map.popitem(last=False)

    def invalidate(self, vpn: Optional[int] = None) -> None:
        if vpn is None:
            self._map.clear()
        else:
            self._map.pop(vpn, None)


@dataclass
class TlbResult:
    frame: Optional[int]
    latency: int
    level: str                  # "L1", "L2", "WALK", "MISS"


class Tlb:
    """L1+L2 TLB with a page-walk fallback latency.

    ``lookup`` returns the frame (or None when the page table must be
    consulted by the caller) plus the cycles spent.  On a walk the
    caller resolves the mapping and calls :meth:`fill`.
    """

    def __init__(self, config: TlbConfig) -> None:
        self.config = config
        self.l1 = _LruTlb(config.l1_entries)
        self.l2 = _LruTlb(config.l2_entries)
        self.walks = 0

    def lookup(self, vaddr: int) -> TlbResult:
        vpn = vaddr >> self.config.page_bits
        frame = self.l1.lookup(vpn)
        if frame is not None:
            return TlbResult(frame, self.config.l1_latency, "L1")
        frame = self.l2.lookup(vpn)
        if frame is not None:
            self.l1.insert(vpn, frame)
            return TlbResult(
                frame, self.config.l1_latency + self.config.l2_latency, "L2")
        self.walks += 1
        latency = (self.config.l1_latency + self.config.l2_latency
                   + self.config.walk_latency)
        return TlbResult(None, latency, "WALK")

    def fill(self, vaddr: int, frame: int) -> None:
        vpn = vaddr >> self.config.page_bits
        self.l1.insert(vpn, frame)
        self.l2.insert(vpn, frame)

    def shootdown(self, vaddr: Optional[int] = None) -> None:
        """tlbi: invalidate one page (or everything)."""
        vpn = None if vaddr is None else vaddr >> self.config.page_bits
        self.l1.invalidate(vpn)
        self.l2.invalidate(vpn)
