"""Discrete-event simulation engine.

A single priority queue of ``(time, seq, callback)`` drives every
component.  Components schedule work with :meth:`Engine.schedule` and
read :attr:`Engine.now`.  Ties are broken by insertion order, which
keeps runs deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from ..obs.telemetry import current as _telemetry


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


@dataclass(order=True)
class _ScheduledEvent:
    time: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class Engine:
    """Event queue + simulated clock."""

    def __init__(self) -> None:
        self._queue: List[_ScheduledEvent] = []
        self._seq = itertools.count()
        self._now = 0
        self._events_processed = 0

    @property
    def now(self) -> int:
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def schedule(self, delay: int, callback: Callable[[], None]) -> _ScheduledEvent:
        """Run ``callback`` ``delay`` cycles from now (delay >= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        ev = _ScheduledEvent(self._now + delay, next(self._seq), callback)
        heapq.heappush(self._queue, ev)
        return ev

    def schedule_at(self, time: int, callback: Callable[[], None]) -> _ScheduledEvent:
        if time < self._now:
            raise SimulationError(f"cannot schedule in the past ({time} < {self._now})")
        ev = _ScheduledEvent(time, next(self._seq), callback)
        heapq.heappush(self._queue, ev)
        return ev

    @staticmethod
    def cancel(event: _ScheduledEvent) -> None:
        event.cancelled = True

    def step(self) -> bool:
        """Process the next event; False when the queue is empty."""
        while self._queue:
            ev = heapq.heappop(self._queue)
            if ev.cancelled:
                continue
            self._now = ev.time
            self._events_processed += 1
            ev.callback()
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: int = 50_000_000) -> int:
        """Drain the queue (optionally up to simulated time ``until``).

        Returns the final simulated time.  ``max_events`` guards
        against livelock bugs in component logic.
        """
        processed = 0
        try:
            while self._queue:
                if until is not None and self._queue[0].time > until:
                    self._now = until
                    break
                if not self.step():
                    break
                processed += 1
                if processed > max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events — livelock "
                        f"suspected at t={self._now}")
        finally:
            # Bulk update once per drain, never per event: the hot
            # loop stays telemetry-free.
            tel = _telemetry()
            if tel.enabled and processed:
                tel.counter("sim.engine.events").inc(processed)
                tel.gauge("sim.engine.now").set(self._now)
        return self._now

    @property
    def pending(self) -> int:
        return sum(1 for e in self._queue if not e.cancelled)
