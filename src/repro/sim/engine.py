"""Discrete-event simulation engine.

A bucketed calendar queue of ``(time, seq, callback)`` drives every
component.  Components schedule work with :meth:`Engine.schedule` and
read :attr:`Engine.now`.  Ties are broken by insertion order, which
keeps runs deterministic for a fixed seed.

Events that share a timestamp live in one bucket (a plain list drained
in insertion order), so same-cycle bursts cost O(1) per event instead
of a heap sift each; only *distinct* timestamps go through the heap.
Cancellation is lazy — events are tombstoned in place and skipped on
pop — but a live-event counter triggers compaction once cancelled
entries outnumber live ones, so the queue never accumulates unbounded
garbage and :attr:`Engine.pending` stays O(1).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, List, Optional

from ..obs.telemetry import current as _telemetry


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class _ScheduledEvent:
    __slots__ = ("time", "seq", "callback", "cancelled", "_engine")

    def __init__(self, time: int, seq: int,
                 callback: Callable[[], None],
                 engine: "Optional[Engine]") -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self._engine = engine

    def __lt__(self, other: "_ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<event t={self.time} seq={self.seq}{state}>"


class Engine:
    """Event queue + simulated clock."""

    def __init__(self) -> None:
        self._buckets: Dict[int, List[_ScheduledEvent]] = {}
        self._times: List[int] = []  # heap of distinct bucket times
        self._active: Optional[List[_ScheduledEvent]] = None
        self._active_time = 0
        self._active_idx = 0
        self._seq = itertools.count()
        self._now = 0
        self._events_processed = 0
        self._size = 0       # events still queued, live + cancelled
        self._cancelled = 0  # cancelled events still queued

    @property
    def now(self) -> int:
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending(self) -> int:
        """Live (non-cancelled) events still queued."""
        return self._size - self._cancelled

    def schedule(self, delay: int, callback: Callable[[], None]) -> _ScheduledEvent:
        """Run ``callback`` ``delay`` cycles from now (delay >= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self._push(self._now + delay, callback)

    def schedule_at(self, time: int, callback: Callable[[], None]) -> _ScheduledEvent:
        if time < self._now:
            raise SimulationError(f"cannot schedule in the past ({time} < {self._now})")
        return self._push(time, callback)

    def _push(self, time: int, callback: Callable[[], None]) -> _ScheduledEvent:
        ev = _ScheduledEvent(time, next(self._seq), callback, self)
        if self._active is not None and time == self._active_time:
            # Scheduling at the timestamp currently being drained:
            # append to the live bucket so the event still runs this
            # cycle, after everything scheduled before it.
            self._active.append(ev)
        else:
            bucket = self._buckets.get(time)
            if bucket is None:
                self._buckets[time] = [ev]
                heapq.heappush(self._times, time)
            else:
                bucket.append(ev)
        self._size += 1
        return ev

    @staticmethod
    def cancel(event: _ScheduledEvent) -> None:
        if event.cancelled:
            return
        event.cancelled = True
        engine = event._engine
        if engine is not None:  # still queued — update live counts
            engine._cancelled += 1
            if engine._cancelled * 2 > engine._size:
                engine._compact()

    def _compact(self) -> None:
        """Drop cancelled events and rebuild the calendar in place."""
        if self._active is not None:
            live = [e for e in self._active[self._active_idx:]
                    if not e.cancelled]
            if live:
                self._active = live
                self._active_idx = 0
            else:
                self._active = None
        buckets: Dict[int, List[_ScheduledEvent]] = {}
        size = 0
        for time, bucket in self._buckets.items():
            live = [e for e in bucket if not e.cancelled]
            if live:
                buckets[time] = live
                size += len(live)
        self._buckets = buckets
        self._times = list(buckets)
        heapq.heapify(self._times)
        if self._active is not None:
            size += len(self._active)
        self._size = size
        self._cancelled = 0

    def _next_live(self) -> Optional[_ScheduledEvent]:
        """Pop the earliest live event, dropping tombstones on the way."""
        while True:
            if self._active is not None:
                if self._active_idx < len(self._active):
                    ev = self._active[self._active_idx]
                    self._active_idx += 1
                    self._size -= 1
                    ev._engine = None  # popped: cancel() is a no-op now
                    if ev.cancelled:
                        self._cancelled -= 1
                        continue
                    return ev
                self._active = None
            if not self._times:
                return None
            time = heapq.heappop(self._times)
            self._active = self._buckets.pop(time)
            self._active_time = time
            self._active_idx = 0

    def _peek_time(self) -> Optional[int]:
        """Timestamp of the earliest live event, or None if drained."""
        while True:
            if self._active is not None:
                while self._active_idx < len(self._active):
                    ev = self._active[self._active_idx]
                    if not ev.cancelled:
                        return self._active_time
                    self._active_idx += 1
                    self._size -= 1
                    self._cancelled -= 1
                    ev._engine = None
                self._active = None
            if not self._times:
                return None
            time = heapq.heappop(self._times)
            self._active = self._buckets.pop(time)
            self._active_time = time
            self._active_idx = 0

    def step(self) -> bool:
        """Process the next event; False when the queue is empty."""
        ev = self._next_live()
        if ev is None:
            return False
        self._now = ev.time
        self._events_processed += 1
        ev.callback()
        return True

    def run(self, until: Optional[int] = None, max_events: int = 50_000_000) -> int:
        """Drain the queue (optionally up to simulated time ``until``).

        Returns the final simulated time.  ``max_events`` is an exact
        bound guarding against livelock bugs in component logic: the
        engine processes at most ``max_events`` events and raises if
        live work remains beyond that.
        """
        processed = 0
        try:
            while True:
                next_time = self._peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                if processed >= max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events — livelock "
                        f"suspected at t={self._now}")
                self.step()
                processed += 1
        finally:
            # Bulk update once per drain, never per event: the hot
            # loop stays telemetry-free.
            tel = _telemetry()
            if tel.enabled and processed:
                tel.counter("sim.engine.events").inc(processed)
                tel.gauge("sim.engine.now").set(self._now)
        return self._now
