"""A small RISC-like ISA for the functional-operational engine.

Litmus tests and small kernels compile to this ISA.  It is
deliberately minimal but covers everything the RVWMO litmus families
need: immediates, arithmetic (for address/data dependencies), loads,
stores, atomics, fences, and conditional branches (for control
dependencies).

Register file: integer registers ``r0..rN`` per hardware thread, with
``r0`` hard-wired to zero (RISC-V style).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from .config import ConsistencyModel  # noqa: F401  (re-exported for users)
from ..memmodel.events import FenceKind


class Op(enum.Enum):
    """Instruction opcodes."""

    LI = "li"            # rd <- imm
    ADD = "add"          # rd <- rs1 + rs2
    ADDI = "addi"        # rd <- rs1 + imm
    XOR = "xor"          # rd <- rs1 ^ rs2
    LOAD = "load"        # rd <- mem[addr + rs1]
    STORE = "store"      # mem[addr + rs1] <- rs2 (or imm)
    AMOADD = "amoadd"    # rd <- mem[a]; mem[a] <- rd + rs2  (atomic)
    AMOSWAP = "amoswap"  # rd <- mem[a]; mem[a] <- rs2       (atomic)
    FENCE = "fence"
    BEQ = "beq"          # if rs1 == rs2: skip `imm` following instrs
    BNE = "bne"          # if rs1 != rs2: skip `imm` following instrs
    NOP = "nop"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


MEMORY_OPS = frozenset({Op.LOAD, Op.STORE, Op.AMOADD, Op.AMOSWAP})
WRITE_OPS = frozenset({Op.STORE, Op.AMOADD, Op.AMOSWAP})
READ_OPS = frozenset({Op.LOAD, Op.AMOADD, Op.AMOSWAP})
BRANCH_OPS = frozenset({Op.BEQ, Op.BNE})


@dataclass(frozen=True)
class Instruction:
    """One instruction.

    ``addr`` holds the static base address for memory ops; ``rs1`` (if
    not None) is added to it at execute time, which is how address
    dependencies are expressed.  For stores, the data comes from
    ``rs2`` when set, else ``imm``.
    """

    op: Op
    rd: Optional[int] = None
    rs1: Optional[int] = None
    rs2: Optional[int] = None
    imm: int = 0
    addr: Optional[int] = None
    fence: FenceKind = FenceKind.FULL
    #: Free-form label; litmus postconditions reference result
    #: registers by this (e.g. "r1.0" meaning thread 1's obs 0).
    label: str = ""

    @property
    def is_memory(self) -> bool:
        return self.op in MEMORY_OPS

    @property
    def is_write(self) -> bool:
        return self.op in WRITE_OPS

    @property
    def is_read(self) -> bool:
        return self.op in READ_OPS

    @property
    def is_atomic(self) -> bool:
        return self.op in (Op.AMOADD, Op.AMOSWAP)

    @property
    def is_fence(self) -> bool:
        return self.op is Op.FENCE

    @property
    def is_branch(self) -> bool:
        return self.op in BRANCH_OPS

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.op is Op.FENCE:
            return f"fence.{self.fence.value}"
        if self.is_memory:
            base = f"0x{self.addr:x}" if self.addr is not None else "?"
            idx = f"+r{self.rs1}" if self.rs1 is not None else ""
            if self.op is Op.LOAD:
                return f"load r{self.rd}, [{base}{idx}]"
            src = f"r{self.rs2}" if self.rs2 is not None else str(self.imm)
            return f"{self.op.value} [{base}{idx}], {src}"
        return f"{self.op.value} rd={self.rd} rs1={self.rs1} rs2={self.rs2} imm={self.imm}"


# ----------------------------------------------------------------------
# Assembler-style helpers
# ----------------------------------------------------------------------
def li(rd: int, imm: int) -> Instruction:
    return Instruction(Op.LI, rd=rd, imm=imm)


def add(rd: int, rs1: int, rs2: int) -> Instruction:
    return Instruction(Op.ADD, rd=rd, rs1=rs1, rs2=rs2)


def addi(rd: int, rs1: int, imm: int) -> Instruction:
    return Instruction(Op.ADDI, rd=rd, rs1=rs1, imm=imm)


def xor(rd: int, rs1: int, rs2: int) -> Instruction:
    return Instruction(Op.XOR, rd=rd, rs1=rs1, rs2=rs2)


def load(rd: int, addr: int, index_reg: Optional[int] = None,
         label: str = "") -> Instruction:
    return Instruction(Op.LOAD, rd=rd, rs1=index_reg, addr=addr, label=label)


def store(addr: int, value: Optional[int] = None,
          src_reg: Optional[int] = None,
          index_reg: Optional[int] = None) -> Instruction:
    if (value is None) == (src_reg is None):
        raise ValueError("store needs exactly one of value/src_reg")
    return Instruction(Op.STORE, rs1=index_reg, rs2=src_reg,
                       imm=value if value is not None else 0, addr=addr)


def fence(kind: FenceKind = FenceKind.FULL) -> Instruction:
    return Instruction(Op.FENCE, fence=kind)


def amoadd(rd: int, addr: int, src_reg: Optional[int] = None,
           imm: int = 0) -> Instruction:
    return Instruction(Op.AMOADD, rd=rd, rs2=src_reg, imm=imm, addr=addr)


def amoswap(rd: int, addr: int, src_reg: Optional[int] = None,
            imm: int = 0, label: str = "") -> Instruction:
    return Instruction(Op.AMOSWAP, rd=rd, rs2=src_reg, imm=imm, addr=addr,
                       label=label)


def beq(rs1: int, rs2: int, skip: int) -> Instruction:
    return Instruction(Op.BEQ, rs1=rs1, rs2=rs2, imm=skip)


def bne(rs1: int, rs2: int, skip: int) -> Instruction:
    return Instruction(Op.BNE, rs1=rs1, rs2=rs2, imm=skip)


def nop() -> Instruction:
    return Instruction(Op.NOP)
