"""Page-fault resolution latency models (paper §4.1, §5.3).

Exception-handling latencies span *microseconds* (lazy memory
allocation — zero a fresh frame, fix the PTE) to *tens of
milliseconds* (demand paging — schedule an IO request and wait).  The
batching optimisation matters precisely because a single imprecise
exception can carry many faulting stores: one handler invocation can
schedule all their IO requests together, overlapping the latencies
instead of paying them serially (§5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

from ..vm.pagetable import FaultType, PageTable

#: Cycle costs at a nominal 2 GHz (cycles = seconds * 2e9).
LAZY_ALLOC_CYCLES = 6_000           # ~3 µs: zero page + PTE update
DEMAND_PAGING_CYCLES = 20_000_000   # ~10 ms: storage IO
PROTECTION_CYCLES = 2_000           # bookkeeping before the kill
IO_ISSUE_CYCLES = 1_500             # submitting one more async IO


@dataclass
class FaultResolution:
    fault: FaultType
    cycles: int
    recoverable: bool


def resolve_one(page_table: PageTable, vaddr: int,
                fault: FaultType) -> FaultResolution:
    """Resolve a single fault, updating the page table."""
    if fault is FaultType.NOT_PRESENT_LAZY:
        page_table.make_present(vaddr)
        return FaultResolution(fault, LAZY_ALLOC_CYCLES, True)
    if fault is FaultType.NOT_PRESENT_SWAPPED:
        page_table.make_present(vaddr)
        return FaultResolution(fault, DEMAND_PAGING_CYCLES, True)
    return FaultResolution(fault, PROTECTION_CYCLES, False)


def resolve_batch(page_table: PageTable,
                  faults: Sequence[Tuple[int, FaultType]],
                  overlap_io: bool = True) -> Tuple[int, bool]:
    """Resolve a batch of faults from one imprecise exception.

    Returns (total cycles, all recoverable).  With ``overlap_io`` the
    IO-bound resolutions cost max-latency plus a per-request issue
    cost — the paper's batching effect; without it they serialise.
    """
    cpu_cycles = 0
    io_latencies: List[int] = []
    all_recoverable = True
    seen_pages = set()
    for vaddr, fault in faults:
        page = vaddr >> 12
        if page in seen_pages:
            continue
        seen_pages.add(page)
        res = resolve_one(page_table, vaddr, fault)
        all_recoverable = all_recoverable and res.recoverable
        if fault is FaultType.NOT_PRESENT_SWAPPED:
            io_latencies.append(res.cycles)
        else:
            cpu_cycles += res.cycles
    if io_latencies:
        if overlap_io:
            cpu_cycles += max(io_latencies)
            cpu_cycles += IO_ISSUE_CYCLES * (len(io_latencies) - 1)
        else:
            cpu_cycles += sum(io_latencies)
    return cpu_cycles, all_recoverable
