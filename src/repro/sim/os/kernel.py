"""Minimal OS kernel model (paper §5.3-5.4).

Owns the per-core FSB configuration, the IE-bit protocol, the
imprecise-store-exception handler selection, and the fence-bracketing
discipline for kernel code paths that may themselves generate
imprecise exceptions (``copy_to_user``-style).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ...core.exceptions import ExceptionCode, InterruptEnable, is_recoverable
from ...core.fsb import FsbEntry
from ...core.handler import (
    BatchingHandler,
    HandlerInvocation,
    MinimalHandler,
)
from ...core.interface import ArchitecturalInterface
from ..config import OsConfig


@dataclass
class TrapRecord:
    kind: str                      # "imprecise-store" | "precise" | "irq"
    core: int
    cycles: int
    stores: int = 0


class Kernel:
    """Per-system OS model.

    The kernel pins one FSB region per core (§5.4: a few 4K pages),
    registers the handler flavour, and exposes the two entry points
    the hardware calls: :meth:`imprecise_store_trap` and
    :meth:`precise_trap`.
    """

    def __init__(self, cores: int, config: Optional[OsConfig] = None,
                 batching: bool = False) -> None:
        self.config = config or OsConfig()
        self.batching = batching
        self.handler = (BatchingHandler(self.config) if batching
                        else MinimalHandler(self.config))
        self.ie = [InterruptEnable() for _ in range(cores)]
        self.trap_log: List[TrapRecord] = []
        #: Pages pinned for FSBs — must never themselves fault (§5.4).
        self.pinned_pages: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Boot-time FSB setup
    # ------------------------------------------------------------------
    def pin_fsb(self, core: int, interface: ArchitecturalInterface) -> None:
        """Record the FSB backing pages as pinned."""
        pages = max(1, interface.fsb.footprint_bytes // 4096)
        self.pinned_pages[core] = pages

    def fsb_is_pinned(self, core: int) -> bool:
        return core in self.pinned_pages

    # ------------------------------------------------------------------
    # Trap entry points
    # ------------------------------------------------------------------
    def imprecise_store_trap(self, core: int,
                             interface: ArchitecturalInterface,
                             resolve: Callable[[FsbEntry], int],
                             apply: Callable[[FsbEntry], None]) -> HandlerInvocation:
        """Service the dedicated imprecise-store exception code."""
        self.ie[core].enter_handler()
        invocation = self.handler.handle(interface, resolve, apply)
        self.trap_log.append(TrapRecord(
            "imprecise-store", core, invocation.costs.total,
            invocation.stores_handled))
        self.ie[core].return_to_user(pending_imprecise=interface.pending > 0)
        return invocation

    def precise_trap(self, core: int, resolve_cycles: int) -> int:
        """A conventional precise exception (load fault etc.)."""
        self.ie[core].enter_handler()
        total = (self.config.trap_entry_cycles + self.config.dispatch_cycles
                 + resolve_cycles + self.config.context_switch_cycles)
        self.trap_log.append(TrapRecord("precise", core, total))
        self.ie[core].return_to_user(pending_imprecise=False)
        return total

    # ------------------------------------------------------------------
    # Kernel-side imprecise-exception containment (§5.4)
    # ------------------------------------------------------------------
    def guarded_kernel_store_sequence(
            self, core: int, interface: ArchitecturalInterface,
            resolve: Callable[[FsbEntry], int],
            apply: Callable[[FsbEntry], None]) -> int:
        """Model ``copy_to_user`` + fence: the fence forces pending
        kernel-generated imprecise exceptions to surface and be handled
        before the function returns, containing them locally.

        Returns the cycles spent handling contained exceptions (0 when
        none were pending).
        """
        if interface.pending == 0:
            return 0
        invocation = self.imprecise_store_trap(core, interface, resolve,
                                               apply)
        return invocation.costs.total

    @property
    def imprecise_traps(self) -> int:
        return sum(1 for t in self.trap_log if t.kind == "imprecise-store")

    @property
    def precise_traps(self) -> int:
        return sum(1 for t in self.trap_log if t.kind == "precise")
