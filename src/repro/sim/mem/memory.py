"""Functional backing store and the memory controller.

The functional image is single-copy-atomic: a write becomes globally
visible at the instant it is applied (which is when a store drains
from a store buffer, or when the OS applies a faulting store).  All
reordering the litmus harness observes therefore comes from *when*
components choose to apply/read values — exactly the store-buffer and
pipeline effects the paper reasons about — not from stale cache data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..config import MemoryConfig


class FlatMemory:
    """Word-granular functional memory, default-zero."""

    def __init__(self, initial: Optional[Dict[int, int]] = None) -> None:
        self._words: Dict[int, int] = dict(initial or {})
        self.reads = 0
        self.writes = 0

    def read(self, addr: int) -> int:
        self.reads += 1
        return self._words.get(addr, 0)

    def write(self, addr: int, value: int) -> None:
        self.writes += 1
        self._words[addr] = value

    def peek(self, addr: int) -> int:
        return self._words.get(addr, 0)

    def snapshot(self) -> Dict[int, int]:
        return dict(self._words)

    def load_image(self, image: Dict[int, int]) -> None:
        self._words.update(image)

    def __contains__(self, addr: int) -> bool:
        return addr in self._words


@dataclass
class MemoryAccessResult:
    """Outcome of a transaction below the LLC."""

    latency: int
    denied: bool = False            # EInject set the `denied` bit
    error_code: int = 0


class MemoryController:
    """Latency model for the channel behind the LLC.

    This is where EInject sits (paper §6.2): it monitors every
    LLC↔memory transaction and denies those touching pages marked
    faulting.
    """

    def __init__(self, config: MemoryConfig, einject=None) -> None:
        self.config = config
        self.einject = einject
        self.accesses = 0
        self.denials = 0

    def access(self, addr: int, is_write: bool) -> MemoryAccessResult:
        self.accesses += 1
        latency = self.config.access_latency
        if is_write:
            latency += self.config.store_extra_latency
        if self.einject is not None:
            verdict = self.einject.check(addr)
            if verdict.denied:
                self.denials += 1
                return MemoryAccessResult(
                    latency=latency, denied=True,
                    error_code=verdict.error_code)
        return MemoryAccessResult(latency=latency)
