"""Directory-based MESI coherence over the mesh (Table 2).

The hierarchy is latency-oriented: per-core L1Ds back a distributed,
address-interleaved L2 whose slices each hold a directory bank.  A
request's latency is composed from cache lookups, mesh traversals to
the home slice, forwarding/invalidation traffic, and (on LLC miss)
the memory controller — where EInject may deny the transaction.

Stores are organically slower than loads here: a write to a shared
block must invalidate every sharer (paying the farthest sharer's
round trip), which is the effect Table 3's store-to-load skew study
amplifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..config import SystemConfig
from ..mem.memory import MemoryController
from ..noc.mesh import Mesh
from .cache import SetAssociativeCache


@dataclass
class DirectoryEntry:
    """MESI directory state for one block."""

    state: str = "I"                 # I, S, or M (E folded into M)
    sharers: Set[int] = field(default_factory=set)
    owner: Optional[int] = None


class AccessResult:
    """Latency and events for one core memory access."""

    __slots__ = ("latency", "hit_level", "denied", "error_code",
                 "invalidations")

    def __init__(self, latency: int, hit_level: str, denied: bool = False,
                 error_code: int = 0, invalidations: int = 0) -> None:
        self.latency = latency
        self.hit_level = hit_level       # "L1", "L2", "FWD", "MEM"
        self.denied = denied
        self.error_code = error_code
        self.invalidations = invalidations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"AccessResult(latency={self.latency}, "
                f"hit_level={self.hit_level!r}, denied={self.denied})")


@dataclass
class HierarchyStats:
    l1_hits: int = 0
    l2_hits: int = 0
    forwards: int = 0
    memory_accesses: int = 0
    invalidation_messages: int = 0
    upgrades: int = 0
    denials: int = 0

    def total_accesses(self) -> int:
        return (self.l1_hits + self.l2_hits + self.forwards
                + self.memory_accesses)


class CoherentHierarchy:
    """Per-core L1Ds + distributed L2 + directory + memory."""

    def __init__(self, config: SystemConfig, memory: MemoryController) -> None:
        self.config = config
        self.memory = memory
        self.mesh = Mesh(config.noc)
        self.l1d = [SetAssociativeCache(config.l1d, "L1D")
                    for _ in range(config.cores)]
        self.l2 = [SetAssociativeCache(config.l2, "L2")
                   for _ in range(config.noc.tiles)]
        self.directory: Dict[int, DirectoryEntry] = {}
        self.stats = HierarchyStats()
        # L1 hits dominate paper-scale replays (~95% of accesses);
        # callers never mutate results, so one shared instance serves
        # them all instead of an allocation per hit.
        self._l1_hit_result = AccessResult(latency=config.l1d.latency,
                                           hit_level="L1")
        # Hot-path constants, hoisted out of the per-miss attr chains.
        self._ntiles = config.noc.tiles
        self._l2_latency = config.l2.latency

    # ------------------------------------------------------------------
    def _dir_entry(self, block_addr: int) -> DirectoryEntry:
        entry = self.directory.get(block_addr)
        if entry is None:
            entry = DirectoryEntry()
            self.directory[block_addr] = entry
        return entry

    def _home(self, block_addr: int) -> int:
        return self.mesh.home_tile(block_addr)

    # ------------------------------------------------------------------
    def access(self, core: int, addr: int, is_write: bool) -> AccessResult:
        """Perform one coherent access from ``core``; returns latency
        and whether the transaction was denied by EInject."""
        l1 = self.l1d[core]
        block = l1.lookup(addr)
        block_addr = l1.block_addr(addr)
        l1_latency = self.config.l1d.latency

        if block is not None:
            if not is_write or block.state == "M":
                self.stats.l1_hits += 1
                if is_write:
                    block.dirty = True
                return self._l1_hit_result
            # Write to a Shared L1 block: upgrade through the home.
            return self._upgrade(core, addr, block_addr, l1_latency)

        return self._miss(core, addr, block_addr, is_write, l1_latency)

    # ------------------------------------------------------------------
    def _upgrade(self, core: int, addr: int, block_addr: int,
                 base_latency: int) -> AccessResult:
        home = self._home(block_addr)
        entry = self._dir_entry(block_addr)
        latency = base_latency + self.mesh.round_trip(core, home, 16)
        invalidations = 0
        worst = 0
        for sharer in sorted(entry.sharers - {core}):
            invalidations += 1
            worst = max(worst, self.mesh.round_trip(home, sharer, 16))
            victim = self.l1d[sharer].invalidate(addr)
            self.stats.invalidation_messages += 1
        latency += worst
        entry.state = "M"
        entry.sharers = {core}
        entry.owner = core
        mine = self.l1d[core].peek(addr)
        if mine is not None:
            mine.state = "M"
            mine.dirty = True
        self.stats.upgrades += 1
        return AccessResult(latency=latency, hit_level="L2",
                            invalidations=invalidations)

    # ------------------------------------------------------------------
    def _miss(self, core: int, addr: int, block_addr: int, is_write: bool,
              base_latency: int) -> AccessResult:
        home = block_addr % self._ntiles
        entry = self.directory.get(block_addr)
        if entry is None:
            entry = DirectoryEntry()
            self.directory[block_addr] = entry
        latency = base_latency + self.mesh.round_trip(
            core, home, 64 if not is_write else 16)
        invalidations = 0

        if entry.state == "M" and entry.owner is not None and entry.owner != core:
            # Dirty elsewhere: forward through the owner (3-hop miss).
            latency += self.mesh.round_trip(home, entry.owner, 64)
            self.l1d[entry.owner].invalidate(addr)
            if not is_write:
                entry.state = "S"
                entry.sharers = {entry.owner, core}
                entry.owner = None
            else:
                entry.sharers = {core}
                entry.owner = core
                self.stats.invalidation_messages += 1
                invalidations += 1
            self._fill(core, addr, is_write)
            self.stats.forwards += 1
            return AccessResult(latency=latency, hit_level="FWD",
                                invalidations=invalidations)

        if is_write and entry.state == "S":
            worst = 0
            for sharer in sorted(entry.sharers - {core}):
                invalidations += 1
                worst = max(worst, self.mesh.round_trip(home, sharer, 16))
                self.l1d[sharer].invalidate(addr)
                self.stats.invalidation_messages += 1
            latency += worst

        l2 = self.l2[home]
        l2_block = l2.lookup(addr)
        if l2_block is not None:
            latency += self._l2_latency
            self._set_dir_after_fill(entry, core, is_write)
            self._fill(core, addr, is_write)
            self.stats.l2_hits += 1
            return AccessResult(latency=latency, hit_level="L2",
                                invalidations=invalidations)

        # LLC miss: go to memory — EInject monitors this transaction.
        result = self.memory.access(addr, is_write)
        latency += self._l2_latency + result.latency
        if result.denied:
            # The transaction is terminated; nothing is installed and
            # the error response backtracks, freeing resources (§5.1).
            self.stats.denials += 1
            return AccessResult(latency=latency, hit_level="MEM",
                                denied=True, error_code=result.error_code,
                                invalidations=invalidations)
        l2.insert(addr, state="V")
        self._set_dir_after_fill(entry, core, is_write)
        self._fill(core, addr, is_write)
        self.stats.memory_accesses += 1
        return AccessResult(latency=latency, hit_level="MEM",
                            invalidations=invalidations)

    # ------------------------------------------------------------------
    def _set_dir_after_fill(self, entry: DirectoryEntry, core: int,
                            is_write: bool) -> None:
        if is_write:
            entry.state = "M"
            entry.sharers = {core}
            entry.owner = core
        else:
            entry.state = "S" if entry.sharers else "S"
            entry.sharers.add(core)
            entry.owner = None

    def _fill(self, core: int, addr: int, is_write: bool) -> None:
        state = "M" if is_write else "S"
        victim = self.l1d[core].insert(addr, state=state, dirty=is_write)
        if victim is not None:
            victim_addr, meta = victim
            ventry = self.directory.get(victim_addr)
            if ventry is not None:
                ventry.sharers.discard(core)
                if ventry.owner == core:
                    ventry.owner = None
                    ventry.state = "S" if ventry.sharers else "I"
            # Non-inclusive L2: dirty victims are written back into the
            # home slice; timing folded into later misses.
            if meta.dirty:
                self.l2[self._home(victim_addr)].insert(
                    victim_addr * self.config.l1d.block_bytes, dirty=True)
