"""Miss Status Holding Registers.

MSHRs bound the memory-level parallelism of a cache: each outstanding
block miss occupies one register until the fill returns; secondary
misses to an in-flight block merge into the existing entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class MshrEntry:
    block_addr: int
    issue_time: int
    ready_time: int
    is_write: bool = False
    merged: int = 0


class MshrFile:
    """Fixed-capacity MSHR file keyed by block address."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("MSHR capacity must be >= 1")
        self.capacity = capacity
        self._entries: Dict[int, MshrEntry] = {}
        self.allocation_failures = 0
        self.merges = 0
        self.peak_occupancy = 0

    def lookup(self, block_addr: int) -> Optional[MshrEntry]:
        return self._entries.get(block_addr)

    def can_allocate(self) -> bool:
        return len(self._entries) < self.capacity

    def allocate(self, block_addr: int, issue_time: int, ready_time: int,
                 is_write: bool = False) -> Optional[MshrEntry]:
        """Allocate (or merge into) an entry; None when full."""
        existing = self._entries.get(block_addr)
        if existing is not None:
            existing.merged += 1
            existing.is_write = existing.is_write or is_write
            self.merges += 1
            return existing
        if not self.can_allocate():
            self.allocation_failures += 1
            return None
        entry = MshrEntry(block_addr, issue_time, ready_time, is_write)
        self._entries[block_addr] = entry
        self.peak_occupancy = max(self.peak_occupancy, len(self._entries))
        return entry

    def release_ready(self, now: int) -> List[MshrEntry]:
        """Free and return every entry whose fill has arrived."""
        done = [e for e in self._entries.values() if e.ready_time <= now]
        for entry in done:
            del self._entries[entry.block_addr]
        return done

    def earliest_ready_time(self) -> Optional[int]:
        if not self._entries:
            return None
        return min(e.ready_time for e in self._entries.values())

    @property
    def occupancy(self) -> int:
        return len(self._entries)
