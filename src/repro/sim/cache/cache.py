"""Set-associative cache arrays (tag store with LRU replacement).

The timing engine needs hit/miss decisions and evictions; data values
live in the flat functional memory, so the arrays track tags and
per-block coherence/metadata only.

Each set is a single insertion-ordered dict doubling as the LRU list:
a touch pops and reinserts the tag (O(1) move-to-end) and the victim
is always the first key — the same replacement order as an explicit
LRU list, without the O(ways) ``list.remove`` on every hit.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Optional, Tuple

from ..config import CacheConfig


class CacheBlock:
    """Metadata for one resident block."""

    __slots__ = ("tag", "state", "dirty", "sw", "sr")

    def __init__(self, tag: int, state: str = "V", dirty: bool = False,
                 sw: bool = False, sr: bool = False) -> None:
        self.tag = tag
        self.state = state            # coherence state (MESI letters or 'V')
        self.dirty = dirty
        #: Per-word speculatively-written / speculatively-read bits (ASO).
        self.sw = sw
        self.sr = sr

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CacheBlock(tag={self.tag}, state={self.state!r}, "
                f"dirty={self.dirty})")


class SetAssociativeCache:
    """An LRU set-associative tag array.

    Addresses are byte addresses; the array works on block addresses
    internally.  ``lookup`` returns the block on hit (refreshing LRU);
    ``insert`` allocates, returning any evicted block's address and
    metadata so the caller can write back / update the directory.
    """

    def __init__(self, config: CacheConfig, level: str = "L1") -> None:
        config.validate()
        self.config = config
        self.level = level
        # dict order == recency order: oldest (LRU victim) first.
        # Sets materialise on first touch — paper-scale runs build
        # hundreds of cache arrays whose sets are mostly never used.
        self._sets: Dict[int, Dict[int, CacheBlock]] = defaultdict(dict)
        self._block_bytes = config.block_bytes
        self._nsets = config.sets
        self._ways = config.ways
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def block_addr(self, addr: int) -> int:
        return addr // self._block_bytes

    def _index_tag(self, block_addr: int) -> Tuple[int, int]:
        index = block_addr % self._nsets
        tag = block_addr // self._nsets
        return index, tag

    # ------------------------------------------------------------------
    def lookup(self, addr: int, update_lru: bool = True) -> Optional[CacheBlock]:
        block_addr = addr // self._block_bytes
        index = block_addr % self._nsets
        tag = block_addr // self._nsets
        cset = self._sets[index]
        block = cset.get(tag)
        if block is None:
            self.misses += 1
            return None
        self.hits += 1
        if update_lru:
            del cset[tag]
            cset[tag] = block
        return block

    def peek(self, addr: int) -> Optional[CacheBlock]:
        """Lookup without touching LRU or counters."""
        block_addr = addr // self._block_bytes
        return self._sets[block_addr % self._nsets].get(
            block_addr // self._nsets)

    def insert(self, addr: int, state: str = "V",
               dirty: bool = False) -> Optional[Tuple[int, CacheBlock]]:
        """Allocate a block; returns (evicted_block_addr, meta) or None."""
        block_addr = addr // self._block_bytes
        index = block_addr % self._nsets
        tag = block_addr // self._nsets
        cset = self._sets[index]
        block = cset.get(tag)
        if block is not None:
            block.state = state
            block.dirty = block.dirty or dirty
            del cset[tag]
            cset[tag] = block
            return None
        victim: Optional[Tuple[int, CacheBlock]] = None
        if len(cset) >= self._ways:
            victim_tag = next(iter(cset))
            victim_block = cset.pop(victim_tag)
            victim = (victim_tag * self._nsets + index, victim_block)
            self.evictions += 1
        cset[tag] = CacheBlock(tag=tag, state=state, dirty=dirty)
        return victim

    def invalidate(self, addr: int) -> Optional[CacheBlock]:
        block_addr = addr // self._block_bytes
        return self._sets[block_addr % self._nsets].pop(
            block_addr // self._nsets, None)

    def resident_blocks(self) -> Iterator[Tuple[int, CacheBlock]]:
        for index, cset in self._sets.items():
            for tag, block in cset.items():
                yield tag * self._nsets + index, block

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets.values())

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = self.misses = self.evictions = 0
