"""Set-associative cache arrays (tag store with LRU replacement).

The timing engine needs hit/miss decisions and evictions; data values
live in the flat functional memory, so the arrays track tags and
per-block coherence/metadata only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..config import CacheConfig


@dataclass
class CacheBlock:
    """Metadata for one resident block."""

    tag: int
    state: str = "V"          # coherence state (MESI letters or 'V')
    dirty: bool = False
    #: Per-word speculatively-written / speculatively-read bits (ASO).
    sw: bool = False
    sr: bool = False


class SetAssociativeCache:
    """An LRU set-associative tag array.

    Addresses are byte addresses; the array works on block addresses
    internally.  ``lookup`` returns the block on hit (refreshing LRU);
    ``insert`` allocates, returning any evicted block's address and
    metadata so the caller can write back / update the directory.
    """

    def __init__(self, config: CacheConfig, level: str = "L1") -> None:
        config.validate()
        self.config = config
        self.level = level
        self._sets: List[Dict[int, CacheBlock]] = [
            {} for _ in range(config.sets)
        ]
        self._lru: List[List[int]] = [[] for _ in range(config.sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def block_addr(self, addr: int) -> int:
        return addr // self.config.block_bytes

    def _index_tag(self, block_addr: int) -> Tuple[int, int]:
        index = block_addr % self.config.sets
        tag = block_addr // self.config.sets
        return index, tag

    # ------------------------------------------------------------------
    def lookup(self, addr: int, update_lru: bool = True) -> Optional[CacheBlock]:
        block_addr = self.block_addr(addr)
        index, tag = self._index_tag(block_addr)
        block = self._sets[index].get(tag)
        if block is None:
            self.misses += 1
            return None
        self.hits += 1
        if update_lru:
            lru = self._lru[index]
            lru.remove(tag)
            lru.append(tag)
        return block

    def peek(self, addr: int) -> Optional[CacheBlock]:
        """Lookup without touching LRU or counters."""
        block_addr = self.block_addr(addr)
        index, tag = self._index_tag(block_addr)
        return self._sets[index].get(tag)

    def insert(self, addr: int, state: str = "V",
               dirty: bool = False) -> Optional[Tuple[int, CacheBlock]]:
        """Allocate a block; returns (evicted_block_addr, meta) or None."""
        block_addr = self.block_addr(addr)
        index, tag = self._index_tag(block_addr)
        cset = self._sets[index]
        lru = self._lru[index]
        victim: Optional[Tuple[int, CacheBlock]] = None
        if tag in cset:
            block = cset[tag]
            block.state = state
            block.dirty = block.dirty or dirty
            lru.remove(tag)
            lru.append(tag)
            return None
        if len(cset) >= self.config.ways:
            victim_tag = lru.pop(0)
            victim_block = cset.pop(victim_tag)
            victim_addr = (victim_tag * self.config.sets + index)
            victim = (victim_addr, victim_block)
            self.evictions += 1
        cset[tag] = CacheBlock(tag=tag, state=state, dirty=dirty)
        lru.append(tag)
        return victim

    def invalidate(self, addr: int) -> Optional[CacheBlock]:
        block_addr = self.block_addr(addr)
        index, tag = self._index_tag(block_addr)
        block = self._sets[index].pop(tag, None)
        if block is not None:
            self._lru[index].remove(tag)
        return block

    def resident_blocks(self) -> Iterator[Tuple[int, CacheBlock]]:
        for index, cset in enumerate(self._sets):
            for tag, block in cset.items():
                yield tag * self.config.sets + index, block

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = self.misses = self.evictions = 0
