"""System configuration (Table 2 of the paper).

The defaults replicate the QFlex simulation setup: 16 ARM
Cortex-A76-class cores (4-way OoO, WC, 128-entry ROB, 32-entry store
buffer), 64 KB 4-way L1s, 1 MB/tile 16-way non-inclusive L2,
directory-based MESI over a 4×4 mesh with 3-cycle hops, and 80-cycle
memory.  Table 3's latency studies are expressed as multipliers:
``memory_latency_scale`` (the 2× memory-latency system) and
``store_latency_skew`` (the 4× store-to-load skew system).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..core.osconfig import OsConfig
from typing import Dict, Optional, Tuple


class ConsistencyModel:
    """String constants for the simulator's consistency modes."""

    SC = "SC"
    PC = "PC"  # == TSO
    WC = "WC"

    ALL = (SC, PC, WC)


@dataclass
class CoreConfig:
    """One out-of-order core (ARM Cortex-A76-class)."""

    width: int = 4                  # 4-way OoO
    rob_entries: int = 128
    store_buffer_entries: int = 32
    consistency: str = ConsistencyModel.WC
    #: Probability that a load depends on the previous load's value
    #: (pointer chasing); exposed so workload models can override it.
    load_dependency: float = 0.3

    def validate(self) -> None:
        if self.consistency not in ConsistencyModel.ALL:
            raise ValueError(f"unknown consistency {self.consistency!r}")
        if self.width < 1 or self.rob_entries < 1:
            raise ValueError("core width and ROB size must be positive")
        if self.store_buffer_entries < 0:
            raise ValueError("store buffer size cannot be negative")


@dataclass
class TlbConfig:
    """Two-level TLB (Table 2: L1 48 entries, L2 1024 entries)."""

    l1_entries: int = 48
    l2_entries: int = 1024
    l1_latency: int = 1
    l2_latency: int = 4
    walk_latency: int = 40          # page-table walk on full miss
    page_bits: int = 12             # 4 KB pages


@dataclass
class CacheConfig:
    """A set-associative cache level."""

    size_bytes: int
    ways: int
    block_bytes: int = 64
    latency: int = 2
    mshrs: int = 32

    @property
    def sets(self) -> int:
        return self.size_bytes // (self.ways * self.block_bytes)

    def validate(self) -> None:
        if self.size_bytes % (self.ways * self.block_bytes):
            raise ValueError(
                f"cache size {self.size_bytes} not divisible by "
                f"ways*block ({self.ways}*{self.block_bytes})"
            )


@dataclass
class NocConfig:
    """2D mesh interconnect (Table 2: 4x4, 16B links, 3 cycles/hop)."""

    rows: int = 4
    cols: int = 4
    link_bytes: int = 16
    hop_latency: int = 3

    @property
    def tiles(self) -> int:
        return self.rows * self.cols


@dataclass
class MemoryConfig:
    """Main memory behind the LLC."""

    access_latency: int = 80        # Table 2 default
    #: Extra one-way latency applied only to store completions, used
    #: for Table 3's store-to-load latency-skew study.
    store_extra_latency: int = 0


@dataclass
class FsbConfig:
    """Faulting Store Buffer sizing (§5.2).

    Sized to the store buffer: every already-retired store might need
    draining.  Entries hold address, data, byte mask, exception code.
    """

    entries: Optional[int] = None   # None -> match store buffer
    entry_bytes: int = 16           # 8B addr+mask/code packed + 8B data
    pinned_pages: int = 1           # a few 4K pages per core (§5.4)


@dataclass
class SystemConfig:
    """Full system: Table 2 defaults, one tile per core."""

    cores: int = 16
    core: CoreConfig = field(default_factory=CoreConfig)
    tlb: TlbConfig = field(default_factory=TlbConfig)
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=64 * 1024, ways=4, block_bytes=64, latency=2, mshrs=32))
    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=64 * 1024, ways=4, block_bytes=64, latency=2, mshrs=32))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=1024 * 1024, ways=16, block_bytes=64, latency=6,
        mshrs=32))
    noc: NocConfig = field(default_factory=NocConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    os: OsConfig = field(default_factory=OsConfig)
    fsb: FsbConfig = field(default_factory=FsbConfig)

    def validate(self) -> None:
        self.core.validate()
        self.l1d.validate()
        self.l1i.validate()
        self.l2.validate()
        if self.cores > self.noc.tiles:
            raise ValueError(
                f"{self.cores} cores exceed {self.noc.tiles} mesh tiles")

    @property
    def fsb_entries(self) -> int:
        return self.fsb.entries or self.core.store_buffer_entries

    # ------------------------------------------------------------------
    # Table 3 study variants
    # ------------------------------------------------------------------
    def with_consistency(self, model: str) -> "SystemConfig":
        cfg = copy_config(self)
        cfg.core.consistency = model
        return cfg

    def with_memory_latency_scale(self, scale: float) -> "SystemConfig":
        """The '2× memory latency' system of Table 3."""
        cfg = copy_config(self)
        cfg.memory.access_latency = int(self.memory.access_latency * scale)
        return cfg

    def with_store_load_skew(self, skew: float) -> "SystemConfig":
        """The '4× store-to-load latency skew' system of Table 3.

        Loads keep the baseline latency; stores take ``skew``× longer
        to complete (extra coherence hops for invalidations across
        sockets/chiplets).
        """
        cfg = copy_config(self)
        extra = int(self.memory.access_latency * (skew - 1.0))
        cfg.memory.store_extra_latency = max(0, extra)
        return cfg


def copy_config(cfg: SystemConfig) -> SystemConfig:
    """Deep copy via dataclasses.replace on every level."""
    return dataclasses.replace(
        cfg,
        core=dataclasses.replace(cfg.core),
        tlb=dataclasses.replace(cfg.tlb),
        l1d=dataclasses.replace(cfg.l1d),
        l1i=dataclasses.replace(cfg.l1i),
        l2=dataclasses.replace(cfg.l2),
        noc=dataclasses.replace(cfg.noc),
        memory=dataclasses.replace(cfg.memory),
        os=dataclasses.replace(cfg.os),
        fsb=dataclasses.replace(cfg.fsb),
    )


def table2_config() -> SystemConfig:
    """The exact Table 2 system."""
    cfg = SystemConfig()
    cfg.validate()
    return cfg


def small_config(cores: int = 2, consistency: str = ConsistencyModel.PC,
                 seedable: bool = True) -> SystemConfig:
    """A two-core system mirroring the paper's FPGA prototype scale
    ("our prototype currently only supports two minimal XiangShan
    cores") — used by the litmus runner."""
    cfg = SystemConfig(cores=cores)
    cfg.core.consistency = consistency
    cfg.core.store_buffer_entries = 8
    cfg.validate()
    return cfg
