"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the paper's experiments:

==========  ==========================================================
command     regenerates
==========  ==========================================================
``litmus``  the §6.3 campaign (Table 6 coverage, zero negative diffs);
            ``--jobs`` shards it over workers, ``--cache`` persists
            allowed sets, ``--json`` writes the structured report;
            ``--randgen N`` campaigns over a seeded constrained-random
            corpus, ``--manifest`` replays a corpus manifest, and
            ``--profile nightly`` applies the paper-scale nightly
            defaults (``docs/randgen.md``)
``gen``     a seeded constrained-random litmus corpus
            (``repro.litmus.randgen``): prints the generation record
            and optionally writes the ``repro.litmus.corpus/v1``
            manifest other commands can replay
``table3``  instruction mix / WC speedup / speculation state
``fig5``    the overhead breakdown with and without batching
``fig6``    GAP/Tailbench relative performance under injection
``proofs``  the executable §4 formalism (Proof 1 + Figure 2)
``mbench``  one microbenchmark configuration (§6.4)
``explore`` exhaustive operational model checking (DPOR) of litmus
            tests, incl. imprecise-machine drain-policy sweeps
``fuzz``    random litmus mutation + divergence shrinking over the
            operational/axiomatic pair
``lint``    static well-formedness lint over litmus tests and
            ``.litmus`` files (rule catalogue:
            ``docs/static_analysis.md``)
``taint``   static FSB information-flow analysis (can a faulting
            store's data transiently reach another core before the OS
            apply point?), with ``--crosscheck`` against the
            exhaustive speculative taint explorer and ``--shrink``
            witness minimization
``serve``   the verdict-store daemon: newline-JSON queries and batched
            incremental verification over TCP/UDS
            (``docs/service.md``)
``profile`` any other command, run under live telemetry
            (``repro.obs``): streams records to JSONL, exports a
            Chrome/Perfetto trace, prints an end-of-run summary
``stats``   offline summary of a telemetry JSONL stream, a Chrome
            trace, or a structured campaign report (Figure 5
            breakdown recomputed from spans when present)
``bench``   the continuous perf-regression tracker over the
            ``BENCH_*.json`` trajectories (``repro.obs.perftrack``);
            ``--check`` gates on noise-aware baselines
==========  ==========================================================
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional


def _parse_cores(spec: str):
    """``"2-4"`` -> ``(2, 4)``; a bare ``"3"`` -> ``(3, 3)``."""
    lo, _, hi = spec.partition("-")
    try:
        return (int(lo), int(hi or lo))
    except ValueError:
        raise SystemExit(f"bad --randgen-cores {spec!r} "
                         f"(expected e.g. 2-4 or 3)")


def _parse_features(spec: str):
    from .litmus.randgen import ALL_FEATURES
    if spec == "all":
        return ALL_FEATURES
    if spec in ("none", ""):
        return ()
    return tuple(part.strip() for part in spec.split(",") if part.strip())


#: ``repro litmus --profile nightly``: the paper-scale seeded slice.
#: A 2k constrained-random corpus, static pre-filter on, DPOR
#: operational cross-check on, clean pass skipped, 2 scheduler seeds —
#: the configuration the nightly CI campaign runs (docs/randgen.md).
NIGHTLY_PROFILE = {"randgen": 2000, "seeds": 2}


def _apply_nightly_profile(args: argparse.Namespace) -> None:
    if args.randgen is None and not args.manifest:
        args.randgen = NIGHTLY_PROFILE["randgen"]
    if args.seeds == 20:  # the parser default — explicit values win
        args.seeds = NIGHTLY_PROFILE["seeds"]
    args.prefilter = True
    args.skip_clean = True
    if args.explore is None:
        args.explore = "dpor"


def _cmd_litmus(args: argparse.Namespace) -> int:
    import logging

    from .litmus import (RunConfig, all_library_tests, check_suite,
                         load_litmus_directory)
    from .litmus.generator import generate_all

    logging.basicConfig(level=logging.INFO,
                        format="%(levelname)s %(name)s: %(message)s")
    if args.profile == "nightly":
        _apply_nightly_profile(args)
    sources = [s for s, used in (("--files", args.files),
                                 ("--randgen", args.randgen is not None),
                                 ("--manifest", args.manifest)) if used]
    if len(sources) > 1:
        raise SystemExit(f"litmus: {' and '.join(sources)} are "
                         f"mutually exclusive test sources")
    corpus = None
    if args.manifest:
        from .litmus.randgen import corpus_from_manifest
        corpus = corpus_from_manifest(args.manifest)
        tests = corpus.litmus_tests()
    elif args.randgen is not None:
        from .litmus.randgen import generate_corpus
        corpus = generate_corpus(
            seed=args.randgen_seed, count=args.randgen,
            cores=_parse_cores(args.randgen_cores),
            features=_parse_features(args.randgen_features))
        tests = corpus.litmus_tests()
    elif args.files:
        tests = load_litmus_directory(args.files)
    else:
        tests = generate_all() + all_library_tests()
    if args.quick:
        tests = tests[:40]
    config = RunConfig(model=args.model, seeds=args.seeds,
                       inject_faults=not args.no_faults,
                       clean_pass=not args.skip_clean,
                       explore=args.explore,
                       prefilter=args.prefilter,
                       taint=args.taint)
    if args.incremental and not args.store:
        raise SystemExit("litmus: --incremental needs --store DIR")
    store = None
    if args.store:
        from .store import VerdictStore
        store = VerdictStore(args.store)
    report = check_suite(tests, config, jobs=args.jobs, cache=args.cache,
                         store=store, incremental=args.incremental)
    if corpus is not None:
        report.corpus = corpus.report_block()
        print(corpus.summary())
    print(report.summary(explain=True))

    if args.json:
        from .analysis.postprocess import write_campaign_report
        write_campaign_report(args.json, report)
        print(f"campaign report written: {args.json}")
    if args.save_log:
        from .analysis.postprocess import write_litmus_log
        hardware = {v.test.name: v.run.outcomes
                    for v in report.verdicts}
        model_log = {v.test.name: v.conformance.allowed
                     for v in report.verdicts}
        write_litmus_log(f"{args.save_log}.hw.json", hardware)
        write_litmus_log(f"{args.save_log}.model.json", model_log)
        print(f"logs written: {args.save_log}.hw.json / .model.json")
    return 0 if report.ok else 1


def _cmd_gen(args: argparse.Namespace) -> int:
    from .litmus.randgen import (RandGenConfig, corpus_from_manifest,
                                 generate_corpus, write_manifest)

    if args.verify:
        corpus = corpus_from_manifest(args.verify)
        print(f"manifest verified: {args.verify} "
              f"({len(corpus)} tests regenerate bit-identically; "
              f"corpus digest {corpus.corpus_digest()[:16]}…)")
        return 0
    config = RandGenConfig(seed=args.seed, count=args.count,
                           cores=_parse_cores(args.cores),
                           features=_parse_features(args.features))
    corpus = generate_corpus(config)
    print(corpus.summary())
    if args.manifest:
        write_manifest(args.manifest, corpus)
        print(f"corpus manifest written: {args.manifest}")
    return 0


def _select_tests(names):
    """Resolve test names against the library + generated suite; no
    names selects the whole hand-written library."""
    from .litmus import all_library_tests
    from .litmus.generator import generate_all

    library = all_library_tests()
    if not names:
        return library
    pool = {t.name: t for t in library + generate_all()}
    missing = [n for n in names if n not in pool]
    if missing:
        known = ", ".join(sorted(pool)[:12])
        raise SystemExit(f"unknown test(s): {', '.join(missing)} "
                         f"(known include: {known}, ...)")
    return [pool[n] for n in names]


def _cmd_explore(args: argparse.Namespace) -> int:
    from .explore import check_drain_policy, crosscheck_test
    from .memmodel.imprecise import DrainPolicy

    tests = _select_tests(args.tests)
    ok = True
    if args.policy:
        policy = (DrainPolicy.SAME_STREAM if args.policy == "same"
                  else DrainPolicy.SPLIT_STREAM)
        for test in tests:
            check = check_drain_policy(
                test, policy, faulting_locs=args.fault or None,
                strategy=args.strategy, max_states=args.max_states)
            status = ("preserves PC+WC" if check.preserves_model else
                      f"RACE: {len(check.violations_pc)} PC-forbidden "
                      f"outcome(s)")
            print(f"{test.name} [{policy.value}, faults="
                  f"{','.join(check.faulting_locs)}]: {status} "
                  f"({check.stats.interleavings} interleavings, "
                  f"{check.stats.states_visited} states)")
            for outcome, schedule in sorted(
                    check.violation_schedules.items()):
                print(f"  outcome {dict(outcome)}")
                print("  schedule: " + " | ".join(schedule))
            # A race is the *expected* finding for split-stream; only
            # same-stream races falsify the paper's claim.
            if policy is DrainPolicy.SAME_STREAM:
                ok = ok and check.preserves_model
    else:
        for test in tests:
            check = crosscheck_test(test, model=args.model,
                                    strategy=args.strategy,
                                    max_states=args.max_states)
            rel = "==" if check.require_equality else "<="
            verdict = "ok" if check.ok else "MISMATCH"
            print(f"{test.name} [{check.machine}/{args.strategy}]: "
                  f"{verdict} operational {len(check.operational)} "
                  f"{rel} allowed {len(check.allowed)} "
                  f"({check.stats.interleavings} interleavings, "
                  f"{check.stats.states_visited} states, "
                  f"{check.stats.wall_time_s:.3f}s)")
            for outcome, schedule in sorted(
                    check.violation_schedules.items()):
                print(f"  forbidden outcome {dict(outcome)}")
                print("  schedule: " + " | ".join(schedule))
            ok = ok and check.ok
    return 0 if ok else 1


def _cmd_taint(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .memmodel.imprecise import DrainPolicy
    from .staticanalysis import TaintVerdict, analyze_taint

    tests = _select_tests(args.tests)
    if args.policy == "both":
        policies = [DrainPolicy.SAME_STREAM, DrainPolicy.SPLIT_STREAM]
    else:
        policies = [DrainPolicy.SAME_STREAM if args.policy == "same"
                    else DrainPolicy.SPLIT_STREAM]
    faulting = tuple(args.fault) if args.fault else None

    ok = True
    records = []
    for test in tests:
        for policy in policies:
            report = analyze_taint(test, policy, faulting_locs=faulting)
            entry = report.as_dict()
            print(f"{test.name} [{policy.value}, faults="
                  f"{','.join(report.faulting_locs)}]: "
                  f"{report.verdict.value}"
                  + (f" ({len(report.flows)} flow(s))"
                     if report.flows else "")
                  + (f" [{report.reason}]" if report.reason else ""))
            for flow in report.flows:
                print(f"  {flow.channel}: {flow.describe()}")

            if args.crosscheck:
                from .explore import check_taint_policy
                check = check_taint_policy(
                    test, policy, faulting_locs=faulting,
                    strategy=args.strategy, max_states=args.max_states)
                entry["dynamic"] = check.as_dict()
                agree = report.leak_free == (not check.leak)
                tag = "agrees" if agree else "DISAGREES"
                if report.verdict is TaintVerdict.UNKNOWN:
                    tag = "static unknown"
                print(f"  dynamic [{args.strategy}]: "
                      f"{'leak' if check.leak else 'no leak'} "
                      f"({check.stats.interleavings} interleavings, "
                      f"{check.stats.states_visited} states) — {tag}")
                if check.leak and check.witness_schedule:
                    print("  witness: "
                          + " | ".join(check.witness_schedule))
                # Soundness gate: a static leak-free verdict with a
                # dynamic leak is a false negative — the one failure
                # this command must never let pass.
                if report.leak_free and check.leak:
                    print(f"  FALSE NEGATIVE: static leak-free but "
                          f"the speculative explorer leaks on "
                          f"{test.name} [{policy.value}]")
                    ok = False

            if args.shrink and report.verdict is TaintVerdict.LEAK_HAZARD:
                from .explore import leak_predicate, shrink_test
                shrunk = shrink_test(
                    test, leak_predicate(policy, strategy=args.strategy,
                                         max_states=args.max_states))
                if shrunk is None:
                    print("  shrink: dynamic explorer found no "
                          "leaking schedule to minimize")
                else:
                    print(f"  shrink: {shrunk.original_ops} -> "
                          f"{shrunk.final_ops} op(s) in "
                          f"{shrunk.rounds} round(s) "
                          f"({shrunk.candidates_tried} candidates)")
                    for tid, ops in enumerate(shrunk.test.threads):
                        print(f"    C{tid}: "
                              + "; ".join(str(op) for op in ops))
                    print("    witness: "
                          + " | ".join(shrunk.schedule))
                    entry["shrink"] = {
                        "original_ops": shrunk.original_ops,
                        "final_ops": shrunk.final_ops,
                        "rounds": shrunk.rounds,
                        "candidates_tried": shrunk.candidates_tried,
                        "threads": [[list(op) for op in ops]
                                    for ops in shrunk.test.threads],
                        "schedule": list(shrunk.schedule),
                    }
            records.append(entry)

    hazards = sum(1 for r in records if r["verdict"] == "leak-hazard")
    unknown = sum(1 for r in records if r["verdict"] == "unknown")
    print(f"taint: {len(records)} check(s) over {len(tests)} test(s), "
          f"{hazards} leak-hazard, {unknown} unknown")
    if args.json:
        Path(args.json).write_text(json.dumps(
            {"schema": "repro.taint-report/v1",
             "checks": records}, indent=1, sort_keys=True))
        print(f"taint report written: {args.json}")
    return 0 if ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .staticanalysis import has_lint_errors, lint_file, lint_tests

    ignore = tuple(args.ignore or ())
    findings = []
    scanned = 0

    def lint_dir(directory) -> None:
        nonlocal scanned
        paths = sorted(Path(directory).glob("*.litmus"))
        if not paths:
            raise SystemExit(f"no .litmus files under {directory}")
        for path in paths:
            scanned += 1
            findings.extend(lint_file(path, ignore=ignore))

    selected = False
    if args.all:
        from .litmus import all_library_tests
        from .litmus.generator import generate_all
        tests = generate_all() + all_library_tests()
        scanned += len(tests)
        findings.extend(lint_tests(tests, ignore=ignore))
        if Path("litmus_files").is_dir():
            lint_dir("litmus_files")
        selected = True
    if args.files:
        lint_dir(args.files)
        selected = True
    if args.tests or not selected:
        tests = _select_tests(args.tests)
        scanned += len(tests)
        findings.extend(lint_tests(tests, ignore=ignore))

    for finding in findings:
        print(finding.render())
    errors = sum(1 for f in findings if f.severity == "error")
    print(f"lint: {scanned} test(s) scanned, {len(findings)} "
          f"finding(s), {errors} error(s)")
    if args.json:
        Path(args.json).write_text(json.dumps(
            {"schema": "repro.lint-report/v1", "scanned": scanned,
             "errors": errors,
             "findings": [f.as_dict() for f in findings]},
            indent=1, sort_keys=True))
        print(f"lint report written: {args.json}")
    return 1 if has_lint_errors(findings) else 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .explore import fuzz
    from .memmodel.imprecise import DrainPolicy

    policies = []
    if not args.no_policies:
        policies = [DrainPolicy.SAME_STREAM, DrainPolicy.SPLIT_STREAM]
    report = fuzz(seed=args.seed, iterations=args.iterations,
                  models=tuple(args.model or ("SC", "PC")),
                  policies=tuple(policies),
                  shrink=not args.no_shrink,
                  time_budget_s=args.time_budget,
                  max_findings=args.max_findings)
    print(report.summary())
    # Split-stream policy races are the fuzzer's purpose; only a
    # model divergence (operational != axiomatic) is a repo bug.
    return 1 if report.model_divergences else 0


def _cmd_table3(args: argparse.Namespace) -> int:
    from .analysis import render_table3, run_table3

    rows = run_table3(cores=args.cores, scale=args.scale)
    print(render_table3(rows))
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    from .analysis import render_figure5
    from .workloads import figure5_sweep

    rows = figure5_sweep(fractions=(0.01, 0.1, 0.3))
    print(render_figure5(rows))
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    from .analysis import figure6_gate, render_figure6, run_figure6

    cache = None
    if args.trace_cache:
        from .workloads.capture import TraceCache

        cache = TraceCache(args.trace_cache)
    rows = run_figure6(cores=args.cores, cache=cache,
                       strategy=args.engine)
    print(render_figure6(rows))
    verdict = figure6_gate(rows)
    print(f"Tailbench aggregate throughput: "
          f"{verdict.tailbench_aggregate:.1%} of baseline "
          f"(criterion: loss <= 4%)")
    print(f"GAP per-kernel criterion: >= 96.5% of baseline")
    for failure in verdict.failures:
        print(f"FAIL {failure}")
    if verdict.ok:
        print("fig6 criteria met")
    return 0 if verdict.ok else 1


def _cmd_capture(args: argparse.Namespace) -> int:
    from .analysis.figure6 import FIGURE6_PARAMS
    from .workloads import figure6_workload_names
    from .workloads.capture import TraceCache, capture_workload

    cache = TraceCache(args.cache) if args.cache else TraceCache()
    names = args.workloads or figure6_workload_names()
    for name in names:
        params = dict(FIGURE6_PARAMS.get(name, {"scale": 1.0}))
        captured = capture_workload(name, cores=args.cores,
                                    seed=args.seed, cache=cache,
                                    force=args.force, inject=True,
                                    **params)
        source = "cache" if captured.from_cache else "built"
        print(f"{name:<16} {source:<6} key={captured.cache_key[:12]} "
              f"digest={captured.digest[:12]} cores={captured.cores} "
              f"ops={captured.total_ops()}")
    print(f"cache dir: {cache.root}")
    return 0


def _cmd_scenario16(args: argparse.Namespace) -> int:
    import json as _json

    from .analysis.scenario16 import run_scenario16

    report = run_scenario16(cores=args.cores,
                            requests_per_core=args.requests,
                            stores_per_request=args.stores,
                            seed=args.seed, strategy=args.engine)
    print(_json.dumps(report.as_dict(), indent=2))
    return 0


def _cmd_proofs(args: argparse.Namespace) -> int:
    from .memmodel import demonstrate_figure2_race, prove_rule_suite

    ok = True
    for report in prove_rule_suite():
        print(report.summary())
        ok = ok and report.holds
    race = demonstrate_figure2_race()
    print(race.summary())
    ok = ok and race.matches_paper
    return 0 if ok else 1


def _cmd_mbench(args: argparse.Namespace) -> int:
    from .workloads import run_microbenchmark

    res = run_microbenchmark(faulting_page_fraction=args.fault_fraction,
                             batching=args.batching,
                             stores=args.stores)
    print(f"stores              : {args.stores}")
    print(f"faulting stores     : {res.faulting_stores}")
    print(f"imprecise exceptions: {res.imprecise_exceptions} "
          f"({res.stores_per_exception:.2f} stores/exception)")
    print(f"per-fault breakdown : uarch {res.uarch_per_fault:.0f}  "
          f"os-apply {res.os_apply_per_fault:.0f}  "
          f"os-other {res.os_other_per_fault:.0f}  "
          f"total {res.total_per_fault:.0f} cycles")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import logging

    from .litmus import RunConfig
    from .obs import ConsoleSummarySink
    from .serve import VerdictServer

    logging.basicConfig(level=logging.INFO,
                        format="%(levelname)s %(name)s: %(message)s")
    if not args.uds and not args.port:
        raise SystemExit("serve: need --uds PATH or --port N")
    config = RunConfig(model=args.model, seeds=args.seeds,
                       inject_faults=not args.no_faults,
                       clean_pass=not args.skip_clean)
    sinks = [] if args.quiet else [ConsoleSummarySink()]
    server = VerdictServer(args.store, config, jobs=args.jobs,
                           batch_window_s=args.batch_window,
                           batch_max=args.batch_max,
                           sinks=sinks,
                           trace_buffer=args.trace_buffer)

    def ready(address) -> None:
        where = address.get("uds") or \
            f"{address['host']}:{address['port']}"
        print(f"repro serve: listening on {where} "
              f"(store={args.store}, model={args.model})", flush=True)

    try:
        asyncio.run(server.run(uds=args.uds, host=args.host,
                               port=args.port or 0, ready=ready))
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from . import obs

    rest = list(args.rest)
    if rest and rest[0] == "--":
        rest = rest[1:]
    if not rest:
        raise SystemExit("profile: no command given "
                         "(e.g. repro profile --chrome t.json mbench)")
    if rest[0] == "profile":
        raise SystemExit("profile: cannot profile itself")
    sinks: list = []
    if args.jsonl:
        sinks.append(obs.JsonlSink(args.jsonl))
    if args.chrome:
        sinks.append(obs.ChromeTraceSink(args.chrome))
    if not args.quiet:
        sinks.append(obs.ConsoleSummarySink())
    tel = obs.Telemetry(sinks=sinks)
    # One trace per profiled run: every record (including campaign
    # worker-process records) carries the same trace id.
    context = obs.TraceContext()
    with obs.use(tel), obs.use_trace(context):
        try:
            code = main(rest)
        finally:
            tel.close()
    if not args.quiet:
        print(f"trace id: {context.trace_id}")
    if args.jsonl:
        print(f"telemetry stream written: {args.jsonl}")
    if args.chrome:
        print(f"chrome trace written: {args.chrome} "
              f"(load in Perfetto or chrome://tracing)")
    return code


def _cmd_stats(args: argparse.Namespace) -> int:
    from .obs import (chrome_trace_to_records, load_stats_input,
                      render_summary, summarize_campaign_report,
                      summarize_records, validate_chrome_trace)

    loaded = load_stats_input(args.path)
    try:
        if loaded["kind"] == "campaign":
            print(summarize_campaign_report(loaded["payload"]))
        elif loaded["kind"] == "chrome":
            problems = validate_chrome_trace(loaded["payload"])
            if problems:
                for problem in problems[:10]:
                    print(f"stats: invalid chrome trace: {problem}",
                          file=sys.stderr)
                return 1
            print(render_summary(summarize_records(
                chrome_trace_to_records(loaded["payload"]))))
        else:
            print(render_summary(summarize_records(loaded["records"])))
    except BrokenPipeError:  # `repro stats ... | head`
        sys.stderr.close()
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json as _json

    from .obs import perftrack

    if args.append:
        if not args.entry:
            raise SystemExit("bench: --append needs --entry JSON")
        try:
            entry = _json.loads(args.entry)
        except ValueError as exc:
            raise SystemExit(f"bench: --entry is not JSON: {exc}")
        run = perftrack.append_entry(args.append, entry)
        print(f"bench: appended run {run} to {args.append}")
        return 0
    report = perftrack.check_regressions(args.root, window=args.window)
    if args.json:
        Path(args.json).write_text(_json.dumps(report, indent=1)
                                   + "\n")
    print(perftrack.render_check(report))
    if args.check:
        return 0 if report["ok"] else 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Imprecise Store Exceptions' "
                    "(ISCA 2023)")
    sub = parser.add_subparsers(dest="command", required=True)

    litmus = sub.add_parser("litmus", help="run the litmus campaign")
    litmus.add_argument("--model", default="PC",
                        choices=["SC", "PC", "WC"])
    # Literal mirror of repro.litmus.runner.DEFAULT_SEEDS (kept in
    # sync by tests) so parser construction stays import-light.
    litmus.add_argument("--seeds", type=int, default=20,
                        help="scheduler seeds per pass (default 20)")
    litmus.add_argument("--no-faults", action="store_true")
    litmus.add_argument("--quick", action="store_true",
                        help="only the first 40 tests")
    litmus.add_argument("--files", metavar="DIR",
                        help="run .litmus files from DIR instead of "
                             "the generated suite")
    litmus.add_argument("--save-log", metavar="PREFIX",
                        help="archive hardware/model outcome logs as "
                             "PREFIX.hw.json / PREFIX.model.json")
    litmus.add_argument("--jobs", type=int, default=1,
                        help="shard tests over N worker processes "
                             "(outcomes identical for any N)")
    litmus.add_argument("--json", metavar="PATH",
                        help="write the structured JSON campaign "
                             "report (schema: docs/campaign.md)")
    litmus.add_argument("--cache", metavar="PATH",
                        help="persistent allowed-set cache file; "
                             "repeat campaigns skip re-enumeration")
    litmus.add_argument("--store", metavar="DIR",
                        help="content-addressed verdict store "
                             "directory (repro.store); verdicts are "
                             "recorded and the report gains a 'store' "
                             "block")
    litmus.add_argument("--incremental", action="store_true",
                        help="with --store: replay stored verdicts "
                             "for unchanged (test, config) inputs and "
                             "run only the misses")
    litmus.add_argument("--skip-clean", action="store_true",
                        help="skip the per-test clean pass (faster, "
                             "judges only the injected run)")
    litmus.add_argument("--explore", metavar="STRATEGY", default=None,
                        choices=["dpor", "naive", "verify"],
                        help="also exhaustively cross-check each test "
                             "on the operational machine "
                             "(repro.explore); adds an 'explorer' "
                             "block to verdicts and the JSON report")
    litmus.add_argument("--prefilter", action="store_true",
                        help="classify each test statically first and "
                             "enumerate provably SC-equivalent tests "
                             "under SC (repro.staticanalysis); adds a "
                             "'static' block to the JSON report")
    litmus.add_argument("--taint", action="store_true",
                        help="run the static FSB taint analyzer per "
                             "test under both drain policies "
                             "(repro.staticanalysis.taint); adds a "
                             "'taint' block to verdicts and the JSON "
                             "report (a leak hazard is a report, "
                             "never a failure)")
    litmus.add_argument("--randgen", type=int, metavar="N", default=None,
                        help="campaign over N seeded constrained-random "
                             "tests (repro.litmus.randgen) instead of "
                             "the structural suite; adds the 'corpus' "
                             "block to the JSON report")
    litmus.add_argument("--randgen-seed", type=int, default=0,
                        metavar="SEED",
                        help="corpus seed for --randgen (default 0)")
    litmus.add_argument("--randgen-cores", default="2-4", metavar="LO-HI",
                        help="core-count range for --randgen "
                             "(default 2-4)")
    litmus.add_argument("--randgen-features", default="all",
                        metavar="LIST",
                        help="comma list from fences,deps,atomics,"
                             "faults; or 'all'/'none' (default all)")
    litmus.add_argument("--manifest", metavar="PATH",
                        help="campaign over the corpus a "
                             "repro.litmus.corpus/v1 manifest records "
                             "(regenerated and digest-verified)")
    litmus.add_argument("--profile", default=None, choices=["nightly"],
                        help="apply a named campaign profile; "
                             "'nightly' = 2k-test randgen slice with "
                             "prefilter + DPOR cross-check, clean pass "
                             "skipped, 2 seeds (docs/randgen.md)")
    litmus.set_defaults(fn=_cmd_litmus)

    gen = sub.add_parser(
        "gen",
        help="generate a seeded constrained-random litmus corpus "
             "(repro.litmus.randgen; see docs/randgen.md)")
    gen.add_argument("--seed", type=int, default=0,
                     help="corpus seed (default 0); the same seed "
                          "always regenerates the identical corpus")
    gen.add_argument("--count", type=int, default=100,
                     help="unique, lint-clean tests to emit "
                          "(default 100)")
    gen.add_argument("--cores", default="2-4", metavar="LO-HI",
                     help="core-count range, within 2-4 (default 2-4)")
    gen.add_argument("--features", default="all", metavar="LIST",
                     help="comma list from fences,deps,atomics,faults; "
                          "or 'all'/'none' (default all)")
    gen.add_argument("--manifest", metavar="PATH",
                     help="write the repro.litmus.corpus/v1 manifest "
                          "(replayable via 'repro litmus --manifest')")
    gen.add_argument("--verify", metavar="PATH",
                     help="instead of generating: regenerate the "
                          "corpus PATH records and verify every "
                          "digest matches")
    gen.set_defaults(fn=_cmd_gen)

    lint = sub.add_parser(
        "lint", help="static well-formedness lint for litmus tests")
    lint.add_argument("tests", nargs="*", metavar="TEST",
                      help="test names (default: the hand-written "
                           "library, unless --all/--files is given)")
    lint.add_argument("--all", action="store_true",
                      help="lint the library + generated suite, plus "
                           "./litmus_files if present")
    lint.add_argument("--files", metavar="DIR",
                      help="lint every .litmus file in DIR (parse "
                           "failures become L000 findings)")
    lint.add_argument("--ignore", action="append", metavar="RULE",
                      help="drop a rule ID (repeatable, e.g. "
                           "--ignore L004)")
    lint.add_argument("--json", metavar="PATH",
                      help="write machine-readable findings")
    lint.set_defaults(fn=_cmd_lint)

    explore = sub.add_parser(
        "explore", help="exhaustively model-check litmus tests")
    explore.add_argument("tests", nargs="*", metavar="TEST",
                         help="test names (default: the whole "
                              "hand-written library)")
    explore.add_argument("--model", default="PC",
                         choices=["SC", "TSO", "PC", "WC", "RVWMO"])
    explore.add_argument("--strategy", default="dpor",
                         choices=["dpor", "naive", "verify"])
    explore.add_argument("--max-states", type=int, default=500_000,
                         help="exploration budget per test")
    explore.add_argument("--policy", default=None,
                         choices=["same", "split"],
                         help="explore the imprecise machine under "
                              "this FSB drain policy instead of the "
                              "clean machine")
    explore.add_argument("--fault", action="append", metavar="LOC",
                         help="faulting location for --policy "
                              "(repeatable; default: all locations)")
    explore.set_defaults(fn=_cmd_explore)

    taint = sub.add_parser(
        "taint",
        help="static FSB leak analysis of litmus tests, with optional "
             "dynamic cross-check and witness shrinking")
    taint.add_argument("tests", nargs="*", metavar="TEST",
                       help="test names (default: the whole "
                            "hand-written library)")
    taint.add_argument("--policy", default="both",
                       choices=["same", "split", "both"],
                       help="FSB drain policy to analyze under "
                            "(default both)")
    taint.add_argument("--fault", action="append", metavar="LOC",
                       help="faulting location (repeatable; default: "
                            "all locations)")
    taint.add_argument("--crosscheck", action="store_true",
                       help="also explore the speculative "
                            "taint-tracking machine exhaustively and "
                            "compare; a static leak-free verdict "
                            "contradicted by a dynamic leak (false "
                            "negative) fails the command")
    taint.add_argument("--shrink", action="store_true",
                       help="ddmin-minimize a leak witness for each "
                            "static leak-hazard verdict, printing the "
                            "minimal program and its schedule")
    taint.add_argument("--strategy", default="dpor",
                       choices=["dpor", "naive", "verify"],
                       help="exploration strategy for --crosscheck / "
                            "--shrink (default dpor)")
    taint.add_argument("--max-states", type=int, default=500_000,
                       help="exploration budget per dynamic check")
    taint.add_argument("--json", metavar="PATH",
                       help="write the machine-readable taint report")
    taint.set_defaults(fn=_cmd_taint)

    fuzz = sub.add_parser(
        "fuzz", help="fuzz the operational/axiomatic pair")
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--iterations", type=int, default=50,
                      help="mutants to generate (default 50)")
    fuzz.add_argument("--model", action="append",
                      choices=["SC", "PC", "WC"], default=None,
                      help="models to conformance-check (repeatable; "
                           "default SC and PC)")
    fuzz.add_argument("--no-policies", action="store_true",
                      help="skip the imprecise drain-policy sweep")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="report findings without delta-debugging")
    fuzz.add_argument("--time-budget", type=float, default=None,
                      metavar="SECONDS",
                      help="stop mutating after this much wall time")
    fuzz.add_argument("--max-findings", type=int, default=10)
    fuzz.set_defaults(fn=_cmd_fuzz)

    table3 = sub.add_parser("table3", help="regenerate Table 3")
    table3.add_argument("--cores", type=int, default=4)
    table3.add_argument("--scale", type=float, default=0.5)
    table3.set_defaults(fn=_cmd_table3)

    fig5 = sub.add_parser("fig5", help="regenerate Figure 5")
    fig5.set_defaults(fn=_cmd_fig5)

    fig6 = sub.add_parser("fig6", help="regenerate Figure 6")
    fig6.add_argument("--cores", type=int, default=2)
    fig6.add_argument("--trace-cache", metavar="DIR",
                      help="capture/replay workload traces through "
                           "this cache directory")
    fig6.add_argument("--engine", default="fast",
                      choices=["fast", "naive", "verify"],
                      help="timing engine strategy (bit-identical; "
                           "'verify' runs both and compares)")
    fig6.set_defaults(fn=_cmd_fig6)

    capture = sub.add_parser(
        "capture",
        help="capture workload traces into the on-disk cache "
             "(repro.trace/v1 artifacts; see docs/simulation.md)")
    capture.add_argument("workloads", nargs="*", metavar="NAME",
                         help="workload names (default: the Figure 6 "
                              "roster with its pinned params)")
    capture.add_argument("--cores", type=int, default=2)
    capture.add_argument("--seed", type=int, default=1)
    capture.add_argument("--cache", metavar="DIR",
                         help=f"cache directory (default ${{"
                              f"REPRO_TRACE_CACHE}} or "
                              f"~/.cache/repro-traces)")
    capture.add_argument("--force", action="store_true",
                         help="rebuild even on a cache hit")
    capture.set_defaults(fn=_cmd_capture)

    scen16 = sub.add_parser(
        "scenario16",
        help="16-core concurrent faulting streams: FSB contention "
             "and request-latency percentiles")
    scen16.add_argument("--cores", type=int, default=16)
    scen16.add_argument("--requests", type=int, default=64,
                        help="requests per core (default 64)")
    scen16.add_argument("--stores", type=int, default=24,
                        help="stores per request (default 24)")
    scen16.add_argument("--seed", type=int, default=1)
    scen16.add_argument("--engine", default="fast",
                        choices=["fast", "naive", "verify"])
    scen16.set_defaults(fn=_cmd_scenario16)

    proofs = sub.add_parser("proofs", help="run the executable proofs")
    proofs.set_defaults(fn=_cmd_proofs)

    mbench = sub.add_parser("mbench", help="run the §6.4 microbenchmark")
    mbench.add_argument("--fault-fraction", type=float, default=0.05)
    mbench.add_argument("--stores", type=int, default=2000)
    mbench.add_argument("--batching", action="store_true")
    mbench.set_defaults(fn=_cmd_mbench)

    serve = sub.add_parser(
        "serve",
        help="run the verdict-store daemon (newline-JSON over "
             "TCP/UDS; protocol: docs/service.md)")
    serve.add_argument("--store", metavar="DIR", required=True,
                       help="verdict store directory to serve")
    serve.add_argument("--uds", metavar="PATH",
                       help="listen on a Unix domain socket")
    serve.add_argument("--host", default="127.0.0.1",
                       help="TCP bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=None,
                       help="TCP port (0 picks a free one)")
    serve.add_argument("--model", default="PC",
                       choices=["SC", "PC", "WC"])
    serve.add_argument("--seeds", type=int, default=20,
                       help="scheduler seeds per pass (default 20)")
    serve.add_argument("--no-faults", action="store_true")
    serve.add_argument("--skip-clean", action="store_true",
                       help="skip clean passes in batch campaigns")
    serve.add_argument("--jobs", type=int, default=1,
                       help="worker processes per batch campaign")
    serve.add_argument("--batch-window", type=float, default=0.05,
                       metavar="SECONDS",
                       help="how long to coalesce submissions before "
                            "running a batch (default 0.05)")
    serve.add_argument("--batch-max", type=int, default=512,
                       help="max submissions per batch (default 512)")
    serve.add_argument("--trace-buffer", type=int, default=20000,
                       metavar="RECORDS",
                       help="span-retainer ring size for the 'trace' "
                            "op (default 20000)")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress the shutdown telemetry summary")
    serve.set_defaults(fn=_cmd_serve)

    profile = sub.add_parser(
        "profile",
        help="run another repro command under live telemetry")
    profile.add_argument("--jsonl", metavar="PATH",
                         help="stream telemetry records as JSON lines "
                              "(the 'repro stats' input format)")
    profile.add_argument("--chrome", metavar="PATH",
                         help="write a Chrome trace-event JSON, "
                              "loadable in Perfetto / chrome://tracing")
    profile.add_argument("--quiet", action="store_true",
                         help="suppress the end-of-run console summary")
    profile.add_argument("rest", nargs=argparse.REMAINDER,
                         metavar="COMMAND",
                         help="the repro command (and its arguments) "
                              "to run under telemetry")
    profile.set_defaults(fn=_cmd_profile)

    stats = sub.add_parser(
        "stats",
        help="summarise a telemetry JSONL stream or campaign report")
    stats.add_argument("path", metavar="PATH",
                       help="telemetry .jsonl from 'repro profile "
                            "--jsonl', a Chrome trace from 'repro "
                            "profile --chrome', or a campaign report "
                            "JSON from 'repro litmus --json'")
    stats.set_defaults(fn=_cmd_stats)

    bench = sub.add_parser(
        "bench",
        help="perf-regression tracker over the BENCH_*.json "
             "trajectories (schema: repro.bench/v1)")
    bench.add_argument("--root", default=".", metavar="DIR",
                       help="directory holding the BENCH_*.json "
                            "files (default .)")
    bench.add_argument("--check", action="store_true",
                       help="exit non-zero when the latest run of any "
                            "tracked metric regresses vs its baseline "
                            "window")
    bench.add_argument("--window", type=int, default=5,
                       help="baseline window: median of up to N prior "
                            "runs (default 5)")
    bench.add_argument("--json", metavar="PATH",
                       help="also write the check report as JSON")
    bench.add_argument("--append", metavar="FILE",
                       help="append one run entry to FILE (upgrades "
                            "it to repro.bench/v1) instead of "
                            "checking")
    bench.add_argument("--entry", metavar="JSON",
                       help="the raw entry object for --append "
                            "(must include a 'bench' key)")
    bench.set_defaults(fn=_cmd_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
