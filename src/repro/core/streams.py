"""Drain-stream policies (paper §4.5-4.6).

When the store buffer holds a faulting store, the remaining entries
can either keep draining to memory (*split stream*) or be routed
through the architectural interface together with the faulting store
(*same stream*).  The paper proves split stream admits PC violations
without extra synchronisation and therefore builds same stream; both
are implemented here so the litmus harness and the Figure 2 bench can
exercise the difference operationally.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..memmodel.imprecise import DrainPolicy
from .exceptions import ExceptionCode


class DrainTarget(enum.Enum):
    MEMORY = "memory"        # normal coherent write
    INTERFACE = "interface"  # PUT onto the FSB via the FSBC


@dataclass(frozen=True)
class PendingStore:
    """A store-buffer entry awaiting drain."""

    addr: int
    data: int
    byte_mask: int = 0xFF
    error_code: ExceptionCode = ExceptionCode.NONE

    @property
    def is_faulting(self) -> bool:
        return self.error_code is not ExceptionCode.NONE


@dataclass(frozen=True)
class DrainAction:
    target: DrainTarget
    store: PendingStore


def plan_drain(entries: Sequence[PendingStore],
               policy: DrainPolicy) -> List[DrainAction]:
    """Produce the drain plan for a store buffer, oldest-first.

    Same stream (§4.6, and §5.3's "drains all unfinished stores"):
    every entry — faulting or not — goes to the interface, preserving
    FIFO order, so the OS re-establishes the full store order.

    Split stream (§4.5): only faulting entries go to the interface;
    the rest drain to memory.  Relative order within each stream is
    preserved, but the two streams are unordered with respect to each
    other — the source of the Figure 2 race.
    """
    if not any(e.is_faulting for e in entries):
        return [DrainAction(DrainTarget.MEMORY, e) for e in entries]

    if policy is DrainPolicy.SAME_STREAM:
        return [DrainAction(DrainTarget.INTERFACE, e) for e in entries]

    return [
        DrainAction(
            DrainTarget.INTERFACE if e.is_faulting else DrainTarget.MEMORY,
            e)
        for e in entries
    ]


def interface_volume(entries: Sequence[PendingStore],
                     policy: DrainPolicy) -> Tuple[int, int]:
    """(interface entries, direct-memory entries) for a drain plan.

    The same-stream policy trades a larger interface volume for
    correctness-by-construction; the ablation bench quantifies it.
    """
    plan = plan_drain(entries, policy)
    to_interface = sum(1 for a in plan if a.target is DrainTarget.INTERFACE)
    return to_interface, len(plan) - to_interface
