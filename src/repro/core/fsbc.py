"""The Faulting Store Buffer Controller (paper §5.2-5.3).

One FSBC per core, co-located with the store buffer.  After the store
buffer detects an imprecise store exception, it hands the FSBC its
entries in the order the memory model mandates; the FSBC writes each
to the FSB tail, increments the tail pointer, and acknowledges the
store buffer, which discards the entry.  When every entry has
drained, the FSBC raises the imprecise exception, pinned to the
oldest uncommitted instruction in the ROB.

The control/data paths are idle in the common case — the FSBC
activates only after an exception is detected, so the core keeps its
unmodified store-buffer fast path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..obs.telemetry import current as _telemetry
from .exceptions import ExceptionCode, ImpreciseStoreException
from .fsb import FaultingStoreBuffer, FsbEntry


@dataclass
class FsbcStats:
    drains: int = 0
    activations: int = 0
    exceptions_raised: int = 0
    drain_cycles: int = 0


class FsbController:
    """Per-core FSBC.

    Args:
        core: Owning core id.
        fsb: The core's private in-memory ring.
        drain_cycles_per_entry: Cost of one tail write (an L1-bypass
            store to a pinned page); used by the timing accounting.
    """

    #: FPGA prototype cost of the routed design (§6.1), recorded here
    #: as documentation-of-record for the silicon-overhead experiment.
    PROTOTYPE_LUTS = 354
    PROTOTYPE_REGISTERS = 763
    PROTOTYPE_LUT_FRACTION = 0.0012
    PROTOTYPE_REGISTER_FRACTION = 0.0048

    def __init__(self, core: int, fsb: FaultingStoreBuffer,
                 drain_cycles_per_entry: int = 4) -> None:
        self.core = core
        self.fsb = fsb
        self.drain_cycles_per_entry = drain_cycles_per_entry
        self.stats = FsbcStats()
        self._seq = 0

    # ------------------------------------------------------------------
    # System-register view (the four per-core registers of §5.2)
    # ------------------------------------------------------------------
    @property
    def reg_base(self) -> int:
        return self.fsb.base

    @property
    def reg_mask(self) -> int:
        return self.fsb.mask

    @property
    def reg_tail(self) -> int:
        return self.fsb.tail

    @property
    def reg_head(self) -> int:
        return self.fsb.head

    def os_write_head(self, value: int) -> None:
        """The OS-side head update (reads entries off the ring).

        ``value`` is a fixed-width register value; the advance is the
        modular distance from the current head, valid up to the
        current occupancy (i.e. not past the tail), so the check
        stays correct across counter wraparound.
        """
        fsb = self.fsb
        advance = (value - fsb.head) & fsb.reg_mask
        if advance > fsb.occupancy:
            raise ValueError(
                f"head {value} outside [{fsb.head}, {fsb.tail}]")
        for _ in range(advance):
            fsb.pop()

    # ------------------------------------------------------------------
    # Store-buffer side
    # ------------------------------------------------------------------
    def drain_store(self, addr: int, data: int, byte_mask: int = 0xFF,
                    error_code: ExceptionCode = ExceptionCode.NONE) -> int:
        """Drain one store into the FSB; returns the drain latency.

        The store buffer calls this once per entry, in the order the
        memory model requires; the return acts as the completion
        response after which the SB entry is discarded.
        """
        entry = FsbEntry(addr=addr, data=data, byte_mask=byte_mask,
                         error_code=error_code, core=self.core,
                         seq=self._seq)
        self._seq += 1
        self.fsb.drain(entry)
        self.stats.drains += 1
        self.stats.drain_cycles += self.drain_cycles_per_entry
        return self.drain_cycles_per_entry

    def drain_all(self, entries: Sequence[tuple]) -> int:
        """Drain ``(addr, data, byte_mask, error_code)`` tuples in
        order; returns the total drain latency."""
        self.stats.activations += 1
        total = 0
        for addr, data, byte_mask, error_code in entries:
            total += self.drain_store(addr, data, byte_mask, error_code)
        tel = _telemetry()
        if tel.enabled:
            tel.histogram("fsb.drain_batch").observe(len(entries))
            tel.counter("fsb.activations").inc()
        return total

    def raise_exception(self, pinned_pc: int) -> ImpreciseStoreException:
        """All entries drained: raise the imprecise exception, pinned
        to the oldest uncommitted instruction (like an interrupt)."""
        self.stats.exceptions_raised += 1
        return ImpreciseStoreException(
            core=self.core, pinned_pc=pinned_pc,
            fault_count=sum(1 for e in self.fsb.snapshot() if e.is_faulting))

    @property
    def pending(self) -> bool:
        return not self.fsb.is_empty
