"""The paper's core contribution: imprecise store exceptions.

Hardware side: :class:`~repro.core.fsb.FaultingStoreBuffer` (the
per-core in-memory ring), :class:`~repro.core.fsbc.FsbController`,
and :class:`~repro.core.interface.ArchitecturalInterface` (PUT/GET).

Software side: :class:`~repro.core.handler.MinimalHandler` and
:class:`~repro.core.handler.BatchingHandler`, plus the
:class:`~repro.core.contract.ContractChecker` that audits the
Table 5 three-party contract at runtime.
"""

from .contract import (
    ContractChecker,
    ContractEventKind,
    ContractReport,
    ContractViolation,
)
from .exceptions import (
    RECOVERABLE_CODES,
    X86_EXCEPTIONS,
    ExceptionClass,
    ExceptionCode,
    ExceptionDescriptor,
    ImpreciseStoreException,
    InterruptEnable,
    PipelineStage,
    exceptions_by_stage,
    is_recoverable,
)
from .fsb import FaultingStoreBuffer, FsbEntry, FsbOverflowError
from .fsbc import FsbController
from .handler import (
    BatchingHandler,
    HandlerCosts,
    HandlerInvocation,
    MinimalHandler,
)
from .interface import ArchitecturalInterface, InterfaceEvent
from .streams import (
    DrainAction,
    DrainPolicy,
    DrainTarget,
    PendingStore,
    interface_volume,
    plan_drain,
)

__all__ = [
    "ContractChecker", "ContractEventKind", "ContractReport",
    "ContractViolation",
    "RECOVERABLE_CODES", "X86_EXCEPTIONS", "ExceptionClass",
    "ExceptionCode", "ExceptionDescriptor", "ImpreciseStoreException",
    "InterruptEnable", "PipelineStage", "exceptions_by_stage",
    "is_recoverable",
    "FaultingStoreBuffer", "FsbEntry", "FsbOverflowError",
    "FsbController",
    "BatchingHandler", "HandlerCosts", "HandlerInvocation",
    "MinimalHandler",
    "ArchitecturalInterface", "InterfaceEvent",
    "DrainAction", "DrainPolicy", "DrainTarget", "PendingStore",
    "interface_volume", "plan_drain",
]
