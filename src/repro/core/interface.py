"""The architectural interface between microarchitecture and OS (§4.4).

Wraps one core's FSBC + FSB and exposes the two protocol operations of
the formalism: ``PUT`` (core side — drain a store) and ``GET`` (OS
side — retrieve the oldest pending store).  The interface's contract
(Table 5, middle row) is that GETs return stores in exactly the order
PUTs supplied them; the ring-position encoding makes that structural,
and an event log lets the contract checker verify it independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .exceptions import ExceptionCode, ImpreciseStoreException
from .fsb import FaultingStoreBuffer, FsbEntry
from .fsbc import FsbController


@dataclass
class InterfaceEvent:
    """One PUT or GET, for auditing."""

    kind: str          # "PUT" | "GET"
    core: int
    seq: int           # the store's drain sequence number
    addr: int


class ArchitecturalInterface:
    """Per-core PUT/GET endpoint backed by the FSB ring."""

    def __init__(self, core: int, fsb_capacity: int = 32,
                 drain_cycles_per_entry: int = 4) -> None:
        self.core = core
        self.fsb = FaultingStoreBuffer(capacity=fsb_capacity)
        self.fsbc = FsbController(core, self.fsb,
                                  drain_cycles_per_entry)
        self.log: List[InterfaceEvent] = []

    # ------------------------------------------------------------------
    # Core side — PUT(S(A))
    # ------------------------------------------------------------------
    def put(self, addr: int, data: int, byte_mask: int = 0xFF,
            error_code: ExceptionCode = ExceptionCode.NONE) -> int:
        """Supply one store; returns the drain latency in cycles."""
        latency = self.fsbc.drain_store(addr, data, byte_mask, error_code)
        entry = self.fsb.snapshot()[-1]
        self.log.append(InterfaceEvent("PUT", self.core, entry.seq, addr))
        return latency

    def raise_exception(self, pinned_pc: int) -> ImpreciseStoreException:
        return self.fsbc.raise_exception(pinned_pc)

    # ------------------------------------------------------------------
    # OS side — GET
    # ------------------------------------------------------------------
    def get(self) -> Optional[FsbEntry]:
        """Retrieve the oldest faulting store and bump the head.

        Returns None when head == tail (all stores handled).
        """
        entry = self.fsb.pop()
        if entry is not None:
            self.log.append(
                InterfaceEvent("GET", self.core, entry.seq, entry.addr))
        return entry

    def peek_all(self) -> List[FsbEntry]:
        """Read all pending entries without consuming (handler step 1:
        copy the FSB into an OS-managed structure, §5.3)."""
        return self.fsb.snapshot()

    def get_all(self) -> List[FsbEntry]:
        """Drain every pending entry in FIFO order."""
        out = []
        while True:
            entry = self.get()
            if entry is None:
                return out
            out.append(entry)

    @property
    def pending(self) -> int:
        return self.fsb.occupancy

    # ------------------------------------------------------------------
    # Audit
    # ------------------------------------------------------------------
    def fifo_respected(self) -> bool:
        """GET order equals PUT order (by drain sequence)."""
        puts = [e.seq for e in self.log if e.kind == "PUT"]
        gets = [e.seq for e in self.log if e.kind == "GET"]
        return gets == puts[:len(gets)]
