"""Runtime verification of the Table 5 contract.

The contract among the cores, the architectural interface, and the OS:

* **Cores** supply faulting stores to the interface in the serial
  order dictated by the store buffer (FIFO for PC; unordered for WC).
* **Interface** supplies faulting stores to the OS in the same order
  as received from the core.
* **OS** (1) resumes the program only after exception handling,
  (2) applies *all* retrieved faulting stores during handling, and
  (3) applies them in the interface order (PC only).

The checker consumes an event stream recorded by the simulator and
reports violations.  It is wired into the litmus runner so every
litmus execution doubles as a contract audit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


class ContractEventKind(enum.Enum):
    SB_SEND = "sb-send"      # store buffer hands a store to the FSBC
    PUT = "put"              # FSBC writes the store into the FSB
    GET = "get"              # OS retrieves the store
    APPLY = "apply"          # OS performs S_OS
    RESUME = "resume"        # program resumes after handling
    RETIRE_STORE = "retire"  # SB received a retired store (order ref)


@dataclass(frozen=True)
class ContractEvent:
    kind: ContractEventKind
    core: int
    seq: int = -1            # store identity (drain sequence)
    time: int = 0


@dataclass
class ContractViolation:
    rule: str
    core: int
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[core {self.core}] {self.rule}: {self.detail}"


@dataclass
class ContractReport:
    violations: List[ContractViolation] = field(default_factory=list)
    events_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        if self.ok:
            return f"contract OK ({self.events_checked} events)"
        lines = [f"contract VIOLATED ({len(self.violations)} violations):"]
        lines += [f"  {v}" for v in self.violations]
        return "\n".join(lines)


class ContractChecker:
    """Collects events and verifies the three-party contract.

    ``ordered`` distinguishes PC (per-core FIFO required everywhere)
    from WC (order irrelevant except completeness and resume rules).
    """

    def __init__(self, ordered: bool = True) -> None:
        self.ordered = ordered
        self.events: List[ContractEvent] = []

    def record(self, kind: ContractEventKind, core: int, seq: int = -1,
               time: int = 0) -> None:
        self.events.append(ContractEvent(kind, core, seq, time))

    # Convenience wrappers ------------------------------------------------
    def sb_send(self, core: int, seq: int, time: int = 0) -> None:
        self.record(ContractEventKind.SB_SEND, core, seq, time)

    def put(self, core: int, seq: int, time: int = 0) -> None:
        self.record(ContractEventKind.PUT, core, seq, time)

    def get(self, core: int, seq: int, time: int = 0) -> None:
        self.record(ContractEventKind.GET, core, seq, time)

    def apply(self, core: int, seq: int, time: int = 0) -> None:
        self.record(ContractEventKind.APPLY, core, seq, time)

    def resume(self, core: int, time: int = 0) -> None:
        self.record(ContractEventKind.RESUME, core, time=time)

    # ---------------------------------------------------------------------
    def check(self) -> ContractReport:
        report = ContractReport(events_checked=len(self.events))
        cores = {e.core for e in self.events}
        for core in sorted(cores):
            self._check_core(core, report)
        return report

    def _core_seqs(self, core: int, kind: ContractEventKind) -> List[int]:
        return [e.seq for e in self.events
                if e.core == core and e.kind is kind]

    def _check_core(self, core: int, report: ContractReport) -> None:
        sends = self._core_seqs(core, ContractEventKind.SB_SEND)
        puts = self._core_seqs(core, ContractEventKind.PUT)
        gets = self._core_seqs(core, ContractEventKind.GET)
        applies = self._core_seqs(core, ContractEventKind.APPLY)

        # Core rule: stores reach the interface in SB order.
        if self.ordered and sends and puts != sends[:len(puts)]:
            report.violations.append(ContractViolation(
                "core-order", core,
                f"PUT order {puts} != store-buffer order {sends}"))

        # Interface rule: GET order == PUT order.
        if self.ordered and gets != puts[:len(gets)]:
            report.violations.append(ContractViolation(
                "interface-order", core,
                f"GET order {gets} != PUT order {puts}"))

        # OS rule 2: all retrieved stores are applied.
        if set(gets) - set(applies):
            report.violations.append(ContractViolation(
                "os-apply-all", core,
                f"retrieved-but-unapplied stores: {sorted(set(gets) - set(applies))}"))

        # OS rule 3 (PC only): applied in interface order.
        if self.ordered and applies != gets[:len(applies)]:
            report.violations.append(ContractViolation(
                "os-apply-order", core,
                f"apply order {applies} != GET order {gets}"))

        # OS rule 1: resume only after every retrieved store applied.
        self._check_resume(core, report)

    def _check_resume(self, core: int, report: ContractReport) -> None:
        outstanding = 0
        retrieved_not_applied: set = set()
        for event in self.events:
            if event.core != core:
                continue
            if event.kind is ContractEventKind.PUT:
                outstanding += 1
            elif event.kind is ContractEventKind.GET:
                retrieved_not_applied.add(event.seq)
            elif event.kind is ContractEventKind.APPLY:
                retrieved_not_applied.discard(event.seq)
                outstanding -= 1
            elif event.kind is ContractEventKind.RESUME:
                if retrieved_not_applied or outstanding > 0:
                    report.violations.append(ContractViolation(
                        "os-resume-after-handling", core,
                        f"resume with {outstanding} unhandled stores, "
                        f"{sorted(retrieved_not_applied)} unapplied"))
