"""OS cost model (paper §5.3-5.4, Figure 5).

Lives in :mod:`repro.core` because the handlers depend on it; it is
re-exported by :mod:`repro.sim.config` alongside the hardware
parameters.  Calibrated so the minimal handler's per-fault total lands
near the paper's ~600 cycles, with "other OS" (context switch,
exception dispatch, misc) dominating.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class OsConfig:
    """Cost model for the minimal OS."""

    trap_entry_cycles: int = 100      # pipeline flush + mode switch
    dispatch_cycles: int = 150        # exception decode, handler lookup
    context_switch_cycles: int = 120  # save/restore, return to user
    apply_store_cycles: int = 4       # one S_OS store instruction (the
                                      # OS's own store buffer hides it)
    resolve_fault_cycles: int = 60    # EInject clr / page-table fixup
    fsb_read_cycles: int = 6          # one FSB entry load + head bump
                                      # (pinned, cache-hot page)
    #: Demand-paging IO latency (cycles) for the batching IO study.
    io_latency_cycles: int = 2_000_000
    #: Whether the handler may overlap IO requests for batched faults.
    batch_io: bool = True
