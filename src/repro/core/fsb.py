"""The Faulting Store Buffer (paper §5.2).

A per-core ring buffer *in main memory* holding stores drained out of
the store buffer when an imprecise exception is detected.  Four
per-core system registers expose it to the OS:

* ``base``/``mask`` — the buffer's location and size (a power of two),
  configured by the OS at boot; the backing pages are pinned (§5.4).
* ``tail`` — written by the FSBC, read by the OS: next drain slot.
* ``head`` — written by the OS, read by the FSBC: oldest unread entry.

``head``/``tail`` are **fixed-width** registers (``reg_bits`` wide,
64 by default) that count monotonically modulo ``2**reg_bits``; the
slot index is the counter masked by ``mask``.  Keeping the counters
one wrap-level above the slot index is what lets ``head == tail``
mean *empty* and ``tail - head == capacity`` mean *full* without a
separate flag — provided the capacity is strictly smaller than the
register's modulus, which the constructor enforces.  All occupancy
arithmetic is modular, so the ring stays correct across arbitrarily
many counter wraparounds.

Order among faulting stores is encoded purely by ring position —
exactly the property the same-stream formalism needs the interface to
provide (Table 5, row "Interface").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..obs.telemetry import current as _telemetry
from .exceptions import ExceptionCode


class FsbOverflowError(RuntimeError):
    """The ring is full.

    The FSB is sized to the store buffer (§5.2: "the maximum number of
    already retired stores that might need to be drained"), so
    overflow indicates a wiring bug, not an operational condition.
    """


@dataclass(frozen=True)
class FsbEntry:
    """One drained store: address, data, byte mask, exception code.

    ``error_code`` is ``NONE`` for the younger non-faulting stores the
    same-stream policy routes through the interface alongside actual
    faulting stores.
    """

    addr: int
    data: int
    byte_mask: int = 0xFF
    error_code: ExceptionCode = ExceptionCode.NONE
    #: Issuing core and drain sequence, for the contract checker.
    core: int = 0
    seq: int = 0

    @property
    def is_faulting(self) -> bool:
        return self.error_code is not ExceptionCode.NONE

    #: Bytes per entry: packed addr+mask+code (8B) + data (8B) = 16B.
    ENTRY_BYTES = 16


class FaultingStoreBuffer:
    """The in-memory ring with head/tail system-register semantics.

    Args:
        capacity: Ring slots; a positive power of two.
        base: Physical base address of the backing pages.
        reg_bits: Modeled width of the head/tail system registers.
            Must give a modulus strictly greater than ``capacity``
            (i.e. ``2**reg_bits >= 2*capacity``) so empty and full are
            distinguishable.
    """

    def __init__(self, capacity: int, base: int = 0x7F00_0000,
                 reg_bits: int = 64) -> None:
        if capacity < 1 or capacity & (capacity - 1):
            raise ValueError("FSB capacity must be a positive power of two")
        if reg_bits < 1 or capacity >= (1 << reg_bits):
            raise ValueError(
                f"head/tail registers of {reg_bits} bits cannot index a "
                f"{capacity}-entry ring distinguishably (need "
                f"2**reg_bits > capacity)")
        self.capacity = capacity
        self.reg_bits = reg_bits
        #: System registers.
        self.base = base
        self.mask = capacity - 1
        self.reg_mask = (1 << reg_bits) - 1
        self.head = 0
        self.tail = 0
        self._slots: List[Optional[FsbEntry]] = [None] * capacity
        self.total_drained = 0
        self.total_read = 0
        self.peak_occupancy = 0

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Unread entries; modular difference of the fixed-width
        counters, correct across register wraparound."""
        return (self.tail - self.head) & self.reg_mask

    @property
    def is_empty(self) -> bool:
        """head == tail: all faulting stores handled (§5.2)."""
        return self.head == self.tail

    @property
    def is_full(self) -> bool:
        return self.occupancy >= self.capacity

    @property
    def footprint_bytes(self) -> int:
        return self.capacity * FsbEntry.ENTRY_BYTES

    # ------------------------------------------------------------------
    # FSBC side
    # ------------------------------------------------------------------
    def drain(self, entry: FsbEntry) -> int:
        """Write ``entry`` at the tail position; returns the slot index.

        Called by the FSBC; the caller sends the completion response
        back to the store buffer after this returns.
        """
        if self.is_full:
            raise FsbOverflowError(
                f"FSB full ({self.capacity} entries); store buffer larger "
                "than the ring it drains into")
        slot = self.tail & self.mask
        self._slots[slot] = entry
        self.tail = (self.tail + 1) & self.reg_mask
        self.total_drained += 1
        occupancy = self.occupancy
        if occupancy > self.peak_occupancy:
            self.peak_occupancy = occupancy
        tel = _telemetry()
        if tel.enabled:
            tel.counter("fsb.drains").inc()
            tel.gauge("fsb.ring_occupancy").set(occupancy)
        return slot

    # ------------------------------------------------------------------
    # OS side
    # ------------------------------------------------------------------
    def read_head(self) -> Optional[FsbEntry]:
        """Read the oldest entry without consuming it."""
        if self.is_empty:
            return None
        return self._slots[self.head & self.mask]

    def pop(self) -> Optional[FsbEntry]:
        """Read the oldest entry and increment the head pointer."""
        entry = self.read_head()
        if entry is None:
            return None
        self._slots[self.head & self.mask] = None
        self.head = (self.head + 1) & self.reg_mask
        self.total_read += 1
        return entry

    def snapshot(self) -> List[FsbEntry]:
        """All pending entries oldest-first, without consuming them.

        Models the handler's first step of copying all faulting stores
        into an OS data structure (§5.3).
        """
        out = []
        for offset in range(self.occupancy):
            entry = self._slots[(self.head + offset) & self.mask]
            assert entry is not None
            out.append(entry)
        return out
