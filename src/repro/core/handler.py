"""OS imprecise-store-exception handlers (paper §5.3, §6.2).

Two handlers are provided:

* :class:`MinimalHandler` — the prototype's handler: GET one faulting
  store, resolve its fault, apply it with a normal store, bump the
  head; repeat until head == tail.  Every fault pays the full
  resolution cost serially.
* :class:`BatchingHandler` — exploits that one imprecise exception can
  cover many faulting stores: the invocation cost (trap entry,
  dispatch, context switch) is paid once, fault resolutions for
  distinct pages are issued together (overlapping IO latencies), and
  the stores are applied afterwards *in retrieved order*.

Both enforce the Table 5 OS contract: all retrieved stores are applied,
in interface order, before the program resumes.  Irrecoverable faults
terminate the "application" instead — the stores are discarded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .exceptions import ExceptionCode, is_recoverable
from .osconfig import OsConfig
from .fsb import FsbEntry
from .interface import ArchitecturalInterface

#: Resolver: given a faulting entry, fix the underlying condition
#: (clear the EInject bit, map the page, schedule IO...).  Returns the
#: resolution latency in cycles.
ResolveFn = Callable[[FsbEntry], int]

#: Applier: perform S_OS(A, D) — write the store to coherent memory.
ApplyFn = Callable[[FsbEntry], None]


@dataclass
class HandlerCosts:
    """Cycle breakdown of one handler invocation (Figure 5's bars)."""

    os_other: int = 0       # trap entry + dispatch + context switch + FSB reads
    os_resolve: int = 0     # fault fix-up (EInject clr / page-in IO)
    os_apply: int = 0       # applying the faulting stores

    @property
    def total(self) -> int:
        return self.os_other + self.os_resolve + self.os_apply

    def per_store(self, stores: int) -> Dict[str, float]:
        n = max(1, stores)
        return {
            "os_other": self.os_other / n,
            "os_resolve": self.os_resolve / n,
            "os_apply": self.os_apply / n,
            "total": self.total / n,
        }


@dataclass
class HandlerInvocation:
    """Result of servicing one imprecise store exception."""

    stores_handled: int
    faults_resolved: int
    costs: HandlerCosts
    terminated: bool = False
    applied_order: List[int] = field(default_factory=list)  # entry seqs


class _HandlerBase:
    def __init__(self, config: Optional[OsConfig] = None) -> None:
        self.config = config or OsConfig()
        self.invocations = 0
        self.total_stores = 0
        self.total_faults = 0

    def _invocation_overhead(self) -> int:
        cfg = self.config
        return (cfg.trap_entry_cycles + cfg.dispatch_cycles
                + cfg.context_switch_cycles)

    def _check_recoverable(self, entries: Sequence[FsbEntry]) -> bool:
        return all(
            is_recoverable(e.error_code) for e in entries if e.is_faulting)


class MinimalHandler(_HandlerBase):
    """One-at-a-time handling, exactly the §6.2 prototype handler."""

    def handle(self, interface: ArchitecturalInterface,
               resolve: ResolveFn, apply: ApplyFn) -> HandlerInvocation:
        cfg = self.config
        costs = HandlerCosts(os_other=self._invocation_overhead())
        self.invocations += 1

        pending = interface.peek_all()
        if not self._check_recoverable(pending):
            # Irrecoverable: discard the stores, terminate the app.
            discarded = interface.get_all()
            self.total_stores += len(discarded)
            return HandlerInvocation(
                stores_handled=len(discarded), faults_resolved=0,
                costs=costs, terminated=True)

        applied: List[int] = []
        faults = 0
        while True:
            entry = interface.get()
            if entry is None:
                break
            costs.os_other += cfg.fsb_read_cycles
            if entry.is_faulting:
                costs.os_resolve += resolve(entry)
                faults += 1
            apply(entry)
            costs.os_apply += cfg.apply_store_cycles
            applied.append(entry.seq)

        self.total_stores += len(applied)
        self.total_faults += faults
        return HandlerInvocation(
            stores_handled=len(applied), faults_resolved=faults,
            costs=costs, applied_order=applied)


class BatchingHandler(_HandlerBase):
    """Batch-aware handling (§5.3's batching optimisation).

    Reads the whole FSB first, resolves all faults (overlapping IO
    across distinct pages when ``config.batch_io``), then applies every
    store in the retrieved order.  Amortises the per-invocation
    overhead across the batch.
    """

    PAGE_BITS = 12

    def handle(self, interface: ArchitecturalInterface,
               resolve: ResolveFn, apply: ApplyFn) -> HandlerInvocation:
        cfg = self.config
        costs = HandlerCosts(os_other=self._invocation_overhead())
        self.invocations += 1

        entries = interface.peek_all()
        if not self._check_recoverable(entries):
            discarded = interface.get_all()
            self.total_stores += len(discarded)
            return HandlerInvocation(
                stores_handled=len(discarded), faults_resolved=0,
                costs=costs, terminated=True)

        entries = interface.get_all()
        costs.os_other += cfg.fsb_read_cycles * len(entries)

        # Resolve one fault per distinct faulting page; overlap IO.
        seen_pages = set()
        resolve_latencies: List[int] = []
        faults = 0
        for entry in entries:
            if not entry.is_faulting:
                continue
            faults += 1
            page = entry.addr >> self.PAGE_BITS
            if page in seen_pages:
                continue
            seen_pages.add(page)
            resolve_latencies.append(resolve(entry))
        if resolve_latencies:
            if cfg.batch_io:
                # Overlapped: the batch costs its slowest resolution
                # plus a small issue cost per extra request.
                issue_cost = 20 * (len(resolve_latencies) - 1)
                costs.os_resolve += max(resolve_latencies) + issue_cost
            else:
                costs.os_resolve += sum(resolve_latencies)

        applied = []
        for entry in entries:
            apply(entry)
            costs.os_apply += cfg.apply_store_cycles
            applied.append(entry.seq)

        self.total_stores += len(applied)
        self.total_faults += faults
        return HandlerInvocation(
            stores_handled=len(applied), faults_resolved=faults,
            costs=costs, applied_order=applied)
