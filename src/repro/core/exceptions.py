"""Exception taxonomy and the Interrupt-Enable bit.

Covers Table 1 (the x86 exception classification by pipeline origin),
the exception codes the prototype reserves, the recoverable /
irrecoverable split that decides whether faulting stores are applied
or discarded (§4.1), and the IE-bit protocol that serialises handler
execution with critical sections (§5.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


class ExceptionClass(enum.Enum):
    FAULT = "fault"
    TRAP = "trap"
    ABORT = "abort"


class PipelineStage(enum.Enum):
    FETCH = "fetch"
    DECODE = "decode"
    EXECUTE = "execute"
    MEMORY = "memory"
    ANY = "any"            # traps/aborts not tied to one stage
    HIERARCHY = "hierarchy"  # generated in the cache/memory hierarchy


@dataclass(frozen=True)
class ExceptionDescriptor:
    name: str
    klass: ExceptionClass
    stage: PipelineStage
    recoverable: bool
    precise: bool


#: Table 1 — classification of x86 exceptions by origin [Intel SDM].
X86_EXCEPTIONS: Tuple[ExceptionDescriptor, ...] = (
    # Fetch-stage faults
    ExceptionDescriptor("Control protection exception", ExceptionClass.FAULT, PipelineStage.FETCH, False, True),
    ExceptionDescriptor("Code page fault", ExceptionClass.FAULT, PipelineStage.FETCH, True, True),
    ExceptionDescriptor("Code-segment limit violation", ExceptionClass.FAULT, PipelineStage.FETCH, False, True),
    # Decode-stage faults
    ExceptionDescriptor("Invalid opcode", ExceptionClass.FAULT, PipelineStage.DECODE, False, True),
    ExceptionDescriptor("Device not available", ExceptionClass.FAULT, PipelineStage.DECODE, True, True),
    ExceptionDescriptor("Debug (fault)", ExceptionClass.FAULT, PipelineStage.DECODE, True, True),
    # Execute-stage faults
    ExceptionDescriptor("Divide by zero", ExceptionClass.FAULT, PipelineStage.EXECUTE, False, True),
    ExceptionDescriptor("Bound range exceeded", ExceptionClass.FAULT, PipelineStage.EXECUTE, False, True),
    ExceptionDescriptor("FP error", ExceptionClass.FAULT, PipelineStage.EXECUTE, False, True),
    ExceptionDescriptor("Alignment check", ExceptionClass.FAULT, PipelineStage.EXECUTE, False, True),
    ExceptionDescriptor("SIMD FP exception", ExceptionClass.FAULT, PipelineStage.EXECUTE, False, True),
    ExceptionDescriptor("Invalid TSS", ExceptionClass.FAULT, PipelineStage.EXECUTE, False, True),
    # Memory-stage faults
    ExceptionDescriptor("Segment not present", ExceptionClass.FAULT, PipelineStage.MEMORY, True, True),
    ExceptionDescriptor("Stack-segment fault", ExceptionClass.FAULT, PipelineStage.MEMORY, False, True),
    ExceptionDescriptor("Page fault", ExceptionClass.FAULT, PipelineStage.MEMORY, True, True),
    ExceptionDescriptor("General protection fault", ExceptionClass.FAULT, PipelineStage.MEMORY, False, True),
    ExceptionDescriptor("Virtualization exception", ExceptionClass.FAULT, PipelineStage.MEMORY, True, True),
    # Traps
    ExceptionDescriptor("Debug (trap)", ExceptionClass.TRAP, PipelineStage.ANY, True, True),
    ExceptionDescriptor("Breakpoint", ExceptionClass.TRAP, PipelineStage.ANY, True, True),
    ExceptionDescriptor("Overflow", ExceptionClass.TRAP, PipelineStage.ANY, True, True),
    # Aborts — machine checks are the one pre-existing imprecise case.
    ExceptionDescriptor("Double fault", ExceptionClass.ABORT, PipelineStage.ANY, False, True),
    ExceptionDescriptor("Triple fault", ExceptionClass.ABORT, PipelineStage.ANY, False, True),
    ExceptionDescriptor("Machine check", ExceptionClass.ABORT, PipelineStage.HIERARCHY, False, False),
)


def exceptions_by_stage() -> Dict[PipelineStage, List[ExceptionDescriptor]]:
    out: Dict[PipelineStage, List[ExceptionDescriptor]] = {}
    for desc in X86_EXCEPTIONS:
        out.setdefault(desc.stage, []).append(desc)
    return out


class ExceptionCode(enum.IntEnum):
    """Exception codes used by the prototype.

    ``IMPRECISE_STORE`` is the dedicated code reserved in the ISA so
    the OS can identify the new exception type (§5.3); the remaining
    codes classify *why* the store faulted.
    """

    NONE = 0
    PAGE_FAULT_LAZY = 1        # mapped, not present, zero-fill (µs)
    PAGE_FAULT_SWAPPED = 2     # mapped, swapped out, IO needed (ms)
    SEGFAULT = 3               # unmapped — irrecoverable
    PROTECTION = 4             # permission violation — irrecoverable
    ACCEL_DIVIDE = 5           # accelerator callback div-by-zero (täkō)
    EINJECT_BUS_ERROR = 0x1F   # bus error injected by EInject
    IMPRECISE_STORE = 0x20     # the dedicated ISA exception code


#: Codes whose resolution lets the faulting stores be applied (§4.1).
RECOVERABLE_CODES = frozenset({
    ExceptionCode.PAGE_FAULT_LAZY,
    ExceptionCode.PAGE_FAULT_SWAPPED,
    ExceptionCode.EINJECT_BUS_ERROR,
})


def is_recoverable(code: ExceptionCode) -> bool:
    return code in RECOVERABLE_CODES


class InterruptEnable:
    """The IE bit (§5.3).

    Hardware sets the bit when a handler is triggered; the OS sets it
    around critical sections and clears it when ready for new
    interrupts / imprecise store exceptions.  In user mode the bit is
    hard-wired to zero — pending imprecise exceptions therefore block
    the return to user space rather than being masked forever.
    """

    def __init__(self) -> None:
        self._masked = False
        self.in_user_mode = True

    @property
    def masked(self) -> bool:
        # Hard-wired to zero (unmasked) in user mode.
        return self._masked and not self.in_user_mode

    def enter_handler(self) -> None:
        """Hardware: trap taken — mask further delivery, enter kernel."""
        self.in_user_mode = False
        self._masked = True

    def enter_critical_section(self) -> None:
        if self.in_user_mode:
            raise PermissionError("IE bit is not writable from user mode")
        self._masked = True

    def exit_critical_section(self) -> None:
        if self.in_user_mode:
            raise PermissionError("IE bit is not writable from user mode")
        self._masked = False

    def return_to_user(self, pending_imprecise: bool) -> bool:
        """Attempt ERET.  Returns False (and stays in kernel) when an
        imprecise store exception is pending — it cannot be masked in
        user mode, so the OS must handle it first."""
        if pending_imprecise:
            return False
        self._masked = False
        self.in_user_mode = True
        return True


@dataclass(frozen=True)
class ImpreciseStoreException:
    """The exception delivered to the OS when the FSB has content.

    It is *attached to the oldest uncommitted instruction in the ROB*
    (pinned_pc), resembling an interrupt — not to the faulting store,
    which has long retired.
    """

    core: int
    pinned_pc: int
    fault_count: int
    code: ExceptionCode = ExceptionCode.IMPRECISE_STORE
