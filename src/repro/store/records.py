"""Schema-versioned verdict records and input fingerprints.

A :class:`VerdictRecord` is the unit the content-addressed store
(:mod:`repro.store.store`) persists: everything the campaign learned
about one litmus test under one exact configuration — the axiomatic
allowed set, both judged passes, the enumerator's stats, the
operational exploration cross-check, and the static classification.

Records are keyed by an **input fingerprint**: a SHA-256 over the
test's :func:`~repro.litmus.campaign.canonical_test_digest` (itself a
pure function of the test's event structure and reference model)
crossed with the test *name* (seed schedules derive from it) and
every :class:`~repro.litmus.runner.RunConfig` field that can change
the verdict (model, seed count, fault injection, clean pass, drain
policy, exploration strategy, pre-filter).  Change any input and the
fingerprint — hence the storage key — changes, so stored entries
invalidate precisely: an incremental campaign replays a record *iff*
nothing that could affect its content moved.

Records serialise to canonical JSON (sorted keys, no whitespace), so
their content digest — the blob address in the store — is stable
across processes and platforms.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

Outcome = Tuple[Tuple[str, int], ...]

RECORD_SCHEMA = "repro.store.verdict-record/v1"
#: Record schemas :func:`VerdictRecord.from_dict` accepts.  Append on
#: every bump so archived stores stay readable.
READABLE_RECORD_SCHEMAS = (RECORD_SCHEMA,)

#: The :class:`~repro.litmus.runner.RunConfig` fields that feed the
#: fingerprint — exactly those that can change a verdict's content.
FINGERPRINT_CONFIG_FIELDS = ("model", "seeds", "inject_faults",
                             "clean_pass", "drain_policy", "explore",
                             "prefilter")


def _encode_outcomes(outcomes: Set[Outcome]) -> List[List[List]]:
    return sorted([list(pair) for pair in outcome] for outcome in outcomes)


def _decode_outcomes(raw) -> Set[Outcome]:
    return {tuple((str(reg), value) for reg, value in outcome)
            for outcome in raw}


def config_fingerprint_fields(config) -> Dict:
    """The verdict-relevant :class:`RunConfig` fields, JSON-ready."""
    fields_ = {name: getattr(config, name)
               for name in FINGERPRINT_CONFIG_FIELDS}
    fields_["model"] = str(fields_["model"])
    fields_["drain_policy"] = fields_["drain_policy"].value
    return fields_


def verdict_fingerprint(test_digest: str, config,
                        name: str = "") -> str:
    """The storage key: test name x digest x config-relevant fields.

    The *name* participates even though the structural digest does
    not depend on it, because scheduler seed schedules derive from
    the test name (:func:`~repro.litmus.campaign.derive_seed`) — two
    structurally identical tests with different names run different
    schedules, so their verdicts are distinct inputs-wise.
    """
    payload = dict(config_fingerprint_fields(config),
                   test=test_digest, name=name)
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _test_run_dict(run) -> Dict:
    """One judged pass, the campaign-report encoding."""
    return {
        "runs": run.runs,
        "outcomes": _encode_outcomes(run.outcomes),
        "imprecise_exceptions": run.imprecise_exceptions,
        "precise_exceptions": run.precise_exceptions,
        "contract_violations": run.contract_violations,
    }


@dataclass
class VerdictRecord:
    """One stored verdict (or bare allowed set) for one fingerprint.

    ``injected``/``clean`` hold the judged passes in the campaign
    report's encoding (``None`` for a pass that did not run);
    allowed-only records (e.g. imported from a legacy
    ``AllowedSetCache`` file) carry only ``test_digest`` + ``allowed``
    and cannot be replayed into a :class:`TestVerdict`.
    """

    test_digest: str
    allowed: Set[Outcome]
    fingerprint: Optional[str] = None
    name: str = ""
    reference: str = ""
    config: Dict = field(default_factory=dict)
    injected: Optional[Dict] = None
    clean: Optional[Dict] = None
    enumerator: Optional[Dict] = None
    explorer: Optional[Dict] = None
    static: Optional[Dict] = None
    ok: Optional[bool] = None

    @property
    def has_runs(self) -> bool:
        """Whether the record carries pass data and can be replayed."""
        return self.injected is not None or self.clean is not None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_verdict(cls, verdict, config, fingerprint: str,
                     test_digest: str) -> "VerdictRecord":
        """Capture a :class:`~repro.litmus.harness.TestVerdict`."""
        from ..litmus.harness import ENGINE_REFERENCE_MODEL
        passes = {"injected": None, "clean": None}
        passes["injected" if verdict.run.injected else "clean"] = \
            _test_run_dict(verdict.run)
        if verdict.clean_run is not None:
            passes["clean"] = _test_run_dict(verdict.clean_run)
        return cls(
            test_digest=test_digest,
            allowed=set(verdict.conformance.allowed),
            fingerprint=fingerprint,
            name=verdict.test.name,
            reference=ENGINE_REFERENCE_MODEL[config.model],
            config=config_fingerprint_fields(config),
            injected=passes["injected"],
            clean=passes["clean"],
            enumerator=verdict.enum_stats,
            explorer=verdict.explore_check,
            static=verdict.static_check,
            ok=verdict.ok,
        )

    @classmethod
    def allowed_only(cls, test_digest: str,
                     allowed: Set[Outcome]) -> "VerdictRecord":
        """A bare digest -> allowed-set entry (the legacy cache's
        granularity)."""
        return cls(test_digest=test_digest, allowed=set(allowed))

    # ------------------------------------------------------------------
    # Serialisation (canonical JSON -> content address)
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict:
        return {
            "schema": RECORD_SCHEMA,
            "fingerprint": self.fingerprint,
            "test_digest": self.test_digest,
            "name": self.name,
            "reference": self.reference,
            "config": self.config,
            "allowed": _encode_outcomes(self.allowed),
            "injected": self.injected,
            "clean": self.clean,
            "enumerator": self.enumerator,
            "explorer": self.explorer,
            "static": self.static,
            "ok": self.ok,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "VerdictRecord":
        if payload.get("schema") not in READABLE_RECORD_SCHEMAS:
            raise ValueError(
                f"unreadable verdict record schema "
                f"{payload.get('schema')!r}")
        return cls(
            test_digest=payload["test_digest"],
            allowed=_decode_outcomes(payload["allowed"]),
            fingerprint=payload.get("fingerprint"),
            name=payload.get("name", ""),
            reference=payload.get("reference", ""),
            config=payload.get("config", {}),
            injected=payload.get("injected"),
            clean=payload.get("clean"),
            enumerator=payload.get("enumerator"),
            explorer=payload.get("explorer"),
            static=payload.get("static"),
            ok=payload.get("ok"),
        )

    def canonical_blob(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True,
                          separators=(",", ":"))

    def content_digest(self) -> str:
        """The content address: SHA-256 of the canonical blob."""
        return hashlib.sha256(self.canonical_blob().encode()).hexdigest()

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def to_verdict(self, test):
        """Rebuild a :class:`~repro.litmus.harness.TestVerdict` without
        re-running anything.

        Conformance is re-judged from the stored allowed set and
        outcomes (cheap set arithmetic), so a replayed verdict's ``ok``
        is recomputed from first principles, not trusted from storage.
        Enumerator and static blocks are dropped — nothing was
        enumerated or classified *this* run — while the explorer
        cross-check is kept (flagged ``replayed``) because the verdict
        depends on it.
        """
        from ..litmus.harness import TestVerdict
        from ..litmus.runner import TestRun
        from ..memmodel.checker import check_outcome_set
        if not self.has_runs:
            raise ValueError(
                f"record for {self.test_digest[:12]} carries no pass "
                f"data (allowed-only entry); cannot replay")

        def rebuild(pass_dict: Dict, injected: bool) -> TestRun:
            return TestRun(
                test=test, model=self.config.get("model", ""),
                injected=injected,
                outcomes=_decode_outcomes(pass_dict["outcomes"]),
                runs=pass_dict["runs"],
                imprecise_exceptions=pass_dict["imprecise_exceptions"],
                precise_exceptions=pass_dict["precise_exceptions"],
                contract_violations=pass_dict["contract_violations"])

        if self.injected is not None:
            run = rebuild(self.injected, injected=True)
            clean_run = (rebuild(self.clean, injected=False)
                         if self.clean is not None else None)
        else:
            run = rebuild(self.clean, injected=False)
            clean_run = None
        conformance = check_outcome_set(self.allowed, run.outcomes,
                                        model_name=self.reference)
        clean_conformance = None
        if clean_run is not None:
            clean_conformance = check_outcome_set(
                self.allowed, clean_run.outcomes,
                model_name=self.reference)
        explorer = None
        if self.explorer is not None:
            explorer = dict(self.explorer, replayed=True)
        return TestVerdict(test=test, run=run, conformance=conformance,
                           clean_run=clean_run,
                           clean_conformance=clean_conformance,
                           enum_stats=None, explore_check=explorer,
                           static_check=None)
