"""Content-addressed verdict store.

The campaign's long-lived memory: schema-versioned
:class:`VerdictRecord` blobs (allowed set + judged passes + explorer/
static blocks) named by the SHA-256 of their canonical JSON, under a
mergeable on-disk index keyed by input fingerprint (test digest x
model x verdict-relevant ``RunConfig`` fields).  See
``docs/service.md``.
"""

from .records import (FINGERPRINT_CONFIG_FIELDS, READABLE_RECORD_SCHEMAS,
                      RECORD_SCHEMA, VerdictRecord,
                      config_fingerprint_fields, verdict_fingerprint)
from .store import (INDEX_SCHEMA, LEGACY_CACHE_SCHEMA,
                    READABLE_INDEX_SCHEMAS, VerdictStore)

__all__ = [
    "FINGERPRINT_CONFIG_FIELDS", "INDEX_SCHEMA", "LEGACY_CACHE_SCHEMA",
    "READABLE_INDEX_SCHEMAS", "READABLE_RECORD_SCHEMAS", "RECORD_SCHEMA",
    "VerdictRecord", "VerdictStore", "config_fingerprint_fields",
    "verdict_fingerprint",
]
