"""Content-addressed, multi-writer-safe verdict store.

On-disk layout (everything JSON, everything atomic-rename'd)::

    <root>/
      index.json            # fingerprint -> blob address (+ metadata)
      objects/<aa>/<sha256>.json   # one record per file, named by the
                                   # SHA-256 of its canonical JSON

Records are **content-addressed**: a blob's filename is the hash of
its bytes, so two processes that derive the same verdict write the
same file — blob writes are idempotent and can never conflict.  The
mutable part is only the index, and :meth:`VerdictStore.save` merges
it instead of overwriting: under an advisory file lock it re-reads
the on-disk index, unions it with the in-memory entries (conflicts —
two different blobs for one key — resolve by lexicographically
largest blob hash, so merging commutes), and atomically replaces the
file.  Two concurrent campaigns sharing one store therefore lose zero
entries.

Loading tolerates damage loudly: a corrupt or schema-mismatched index
is logged (with the schema actually found) and treated as empty, an
unreadable blob is logged and treated as a miss, and orphaned
``*.tmp`` files from a crashed save are removed.
"""

from __future__ import annotations

import contextlib
import json
import logging
import os
from pathlib import Path
from typing import Dict, Iterator, Optional, Set, Union

from ..obs.telemetry import current as _telemetry
from .records import (Outcome, VerdictRecord, _decode_outcomes,
                      verdict_fingerprint)

log = logging.getLogger("repro.store")

INDEX_SCHEMA = "repro.store.index/v1"
#: Index schemas :class:`VerdictStore` loads.  Append on every bump.
READABLE_INDEX_SCHEMAS = (INDEX_SCHEMA,)

#: The legacy single-file allowed-set cache schema
#: (:data:`repro.litmus.campaign.CACHE_SCHEMA`), importable via
#: :meth:`VerdictStore.import_allowed_cache`.
LEGACY_CACHE_SCHEMA = "repro.litmus.allowed-cache/v1"


@contextlib.contextmanager
def _file_lock(path: Path) -> Iterator[None]:
    """Advisory exclusive lock on ``path`` (best-effort off-POSIX)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        try:
            import fcntl
            fcntl.flock(handle, fcntl.LOCK_EX)
        except ImportError:  # pragma: no cover - non-POSIX fallback
            pass
        yield


def _atomic_write_text(path: Path, text: str) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.parent.mkdir(parents=True, exist_ok=True)
    tmp.write_text(text)
    os.replace(tmp, path)


class VerdictStore:
    """Digest-keyed verdict storage under one root directory.

    Two lookup granularities:

    * :meth:`get` / :meth:`put` — full :class:`VerdictRecord` by input
      fingerprint (test digest x model x config), the incremental
      campaign's unit of replay.
    * :meth:`get_allowed` / :meth:`put_allowed` — bare allowed set by
      :func:`~repro.litmus.campaign.canonical_test_digest`, the legacy
      ``AllowedSetCache`` granularity.  Any stored verdict record also
      serves its allowed set, so a campaign under a *different* seed
      count still skips re-enumeration.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.index_path = self.root / "index.json"
        self.objects = self.root / "objects"
        #: fingerprint -> {"blob", "digest", "name", "reference"}
        self._verdicts: Dict[str, Dict] = {}
        #: test digest -> {"blob"} (allowed-only entries)
        self._allowed: Dict[str, Dict] = {}
        #: test digest -> blob hash for *any* record carrying that
        #: digest's allowed set (secondary index, rebuilt on load).
        self._allowed_blobs: Dict[str, str] = {}
        self._records: Dict[str, VerdictRecord] = {}  # blob -> record
        self.hits = 0
        self.misses = 0
        self.allowed_hits = 0
        self.allowed_misses = 0
        self.puts = 0
        self._load()

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def _load(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        self._cleanup_tmp()
        raw = self._read_index(self.index_path)
        self._verdicts = dict(raw.get("verdicts", {}))
        self._allowed = dict(raw.get("allowed", {}))
        self._rebuild_secondary()

    def _cleanup_tmp(self) -> None:
        """Remove ``*.tmp`` orphans left by a crashed save."""
        for tmp in list(self.root.glob("*.tmp")) + \
                list(self.objects.glob("*/*.tmp")):
            log.warning("store %s: removing orphaned temp file %s "
                        "(crashed save?)", self.root, tmp.name)
            with contextlib.suppress(OSError):
                tmp.unlink()

    @staticmethod
    def _read_index(path: Path) -> Dict:
        if not path.exists():
            return {}
        try:
            raw = json.loads(path.read_text())
        except OSError:
            return {}
        except ValueError:
            log.warning("store index %s: corrupt JSON, starting from "
                        "an empty index (blobs are untouched)", path)
            return {}
        schema = raw.get("schema") if isinstance(raw, dict) else None
        if schema not in READABLE_INDEX_SCHEMAS:
            log.warning("store index %s: unreadable schema %r "
                        "(expected one of %s), ignoring it",
                        path, schema, list(READABLE_INDEX_SCHEMAS))
            return {}
        return raw

    def _rebuild_secondary(self) -> None:
        self._allowed_blobs = {
            digest: meta["blob"] for digest, meta in self._allowed.items()}
        # Verdict records shadow allowed-only entries: they are newer
        # and carry strictly more.
        for meta in self._verdicts.values():
            self._allowed_blobs[meta["digest"]] = meta["blob"]

    # ------------------------------------------------------------------
    # Blob I/O
    # ------------------------------------------------------------------
    def _blob_path(self, blob: str) -> Path:
        return self.objects / blob[:2] / f"{blob}.json"

    def _write_blob(self, record: VerdictRecord) -> str:
        blob = record.content_digest()
        path = self._blob_path(blob)
        if not path.exists():
            # Content-addressed: concurrent writers of the same record
            # produce byte-identical files, so replace is idempotent.
            _atomic_write_text(path, record.canonical_blob())
        self._records[blob] = record
        return blob

    def _read_blob(self, blob: str) -> Optional[VerdictRecord]:
        cached = self._records.get(blob)
        if cached is not None:
            return cached
        path = self._blob_path(blob)
        try:
            record = VerdictRecord.from_dict(json.loads(path.read_text()))
        except OSError:
            log.warning("store %s: missing blob %s", self.root, blob)
            return None
        except ValueError as exc:
            log.warning("store %s: unreadable blob %s (%s)",
                        self.root, blob, exc)
            return None
        self._records[blob] = record
        return record

    # ------------------------------------------------------------------
    # Verdict granularity
    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> Optional[VerdictRecord]:
        meta = self._verdicts.get(fingerprint)
        record = self._read_blob(meta["blob"]) if meta else None
        tel = _telemetry()
        if record is None:
            self.misses += 1
            tel.counter("store.misses").inc()
        else:
            self.hits += 1
            tel.counter("store.hits").inc()
        return record

    def peek(self, fingerprint: str) -> Optional[VerdictRecord]:
        """Like :meth:`get` but without touching the hit/miss
        counters — for internal bookkeeping lookups (e.g. the serve
        daemon resolving a batch it just ran)."""
        meta = self._verdicts.get(fingerprint)
        return self._read_blob(meta["blob"]) if meta else None

    def put(self, record: VerdictRecord) -> str:
        """Store a record; returns its blob address."""
        blob = self._write_blob(record)
        if record.fingerprint:
            self._verdicts[record.fingerprint] = {
                "blob": blob, "digest": record.test_digest,
                "name": record.name, "reference": record.reference}
        else:
            self._allowed[record.test_digest] = {"blob": blob}
        self._allowed_blobs.setdefault(record.test_digest, blob)
        if record.fingerprint:
            self._allowed_blobs[record.test_digest] = blob
        self.puts += 1
        _telemetry().counter("store.puts").inc()
        return blob

    def get_verdict(self, test, config) -> Optional[VerdictRecord]:
        """Convenience: fingerprint ``(test, config)`` and look it up."""
        from ..litmus.campaign import canonical_test_digest
        from ..litmus.harness import ENGINE_REFERENCE_MODEL
        digest = canonical_test_digest(
            test, ENGINE_REFERENCE_MODEL[config.model])
        return self.get(verdict_fingerprint(digest, config,
                                            name=test.name))

    # ------------------------------------------------------------------
    # Allowed-set granularity
    # ------------------------------------------------------------------
    def get_allowed(self, test_digest: str) -> Optional[Set[Outcome]]:
        blob = self._allowed_blobs.get(test_digest)
        record = self._read_blob(blob) if blob else None
        if record is None:
            self.allowed_misses += 1
            return None
        self.allowed_hits += 1
        _telemetry().counter("store.allowed_served").inc()
        return set(record.allowed)

    def put_allowed(self, test_digest: str,
                    allowed: Set[Outcome]) -> str:
        return self.put(VerdictRecord.allowed_only(test_digest, allowed))

    def import_allowed_cache(self, path: Union[str, Path]) -> int:
        """Absorb a legacy ``repro.litmus.allowed-cache/v1`` file;
        returns the number of entries imported."""
        path = Path(path)
        try:
            raw = json.loads(path.read_text())
        except (OSError, ValueError):
            log.warning("cannot import legacy cache %s: unreadable",
                        path)
            return 0
        if raw.get("schema") != LEGACY_CACHE_SCHEMA:
            log.warning("cannot import legacy cache %s: schema %r "
                        "(expected %r)", path, raw.get("schema"),
                        LEGACY_CACHE_SCHEMA)
            return 0
        imported = 0
        for digest, outcomes in raw.get("entries", {}).items():
            if digest not in self._allowed_blobs:
                self.put_allowed(digest, _decode_outcomes(outcomes))
                imported += 1
        return imported

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self) -> None:
        """Merge the in-memory index into the on-disk one.

        Union per key map; a key present in both with different blobs
        resolves to the lexicographically largest blob hash — an
        arbitrary but *commutative* rule, so any save order converges
        on the same index.  Runs under an advisory lock so concurrent
        savers serialise their read-merge-replace cycles.
        """
        with _file_lock(self.root / ".lock"):
            with _telemetry().span("store.save", path=str(self.root)):
                on_disk = self._read_index(self.index_path)
                merged_v = self._merge(on_disk.get("verdicts", {}),
                                       self._verdicts)
                merged_a = self._merge(on_disk.get("allowed", {}),
                                       self._allowed)
                payload = {"schema": INDEX_SCHEMA,
                           "verdicts": merged_v, "allowed": merged_a}
                _atomic_write_text(
                    self.index_path,
                    json.dumps(payload, indent=1, sort_keys=True))
                self._verdicts = merged_v
                self._allowed = merged_a
                self._rebuild_secondary()

    @staticmethod
    def _merge(theirs: Dict[str, Dict],
               ours: Dict[str, Dict]) -> Dict[str, Dict]:
        merged = dict(theirs)
        for key, meta in ours.items():
            other = merged.get(key)
            if other is not None and other["blob"] > meta["blob"]:
                continue
            merged[key] = meta
        return merged

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Distinct stored entries (verdicts + unshadowed allowed)."""
        return len(self._verdicts) + len(
            set(self._allowed) - {meta["digest"]
                                  for meta in self._verdicts.values()})

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._verdicts

    def stats(self) -> Dict:
        """JSON-ready store description (instance-lifetime counters)."""
        return {
            "path": str(self.root),
            "records": len(self),
            "verdicts": len(self._verdicts),
            "hits": self.hits,
            "misses": self.misses,
            "allowed_hits": self.allowed_hits,
            "allowed_misses": self.allowed_misses,
            "puts": self.puts,
        }
