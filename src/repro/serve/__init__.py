"""``repro serve`` — the always-warm verdict daemon.

:class:`~repro.serve.server.VerdictServer` keeps a
:class:`~repro.store.VerdictStore` resident and answers newline-JSON
queries over TCP or a Unix socket; cache-miss submissions from
concurrent clients coalesce into one incremental campaign batch.
Requests may carry a trace id for end-to-end request tracing, and
the ``health``/``ready``/``metrics`` ops expose the operational
surface (see ``docs/service.md``).
:class:`~repro.serve.client.ServeClient` is the matching blocking
client.  Protocol details live in :mod:`repro.serve.protocol` and
``docs/service.md``.
"""

from .client import ServeClient, ServeError
from .protocol import (MAX_LINE_BYTES, PROTOCOL, ProtocolError,
                       decode_line, encode_line, test_from_wire,
                       test_to_wire)
from .server import VerdictServer

__all__ = [
    "MAX_LINE_BYTES",
    "PROTOCOL",
    "ProtocolError",
    "ServeClient",
    "ServeError",
    "VerdictServer",
    "decode_line",
    "encode_line",
    "test_from_wire",
    "test_to_wire",
]
