"""``repro serve`` — the asyncio verdict daemon.

The campaign as a long-running system: a :class:`VerdictServer` owns
one :class:`~repro.store.VerdictStore` and answers newline-JSON
requests (:mod:`repro.serve.protocol`) over TCP or a Unix domain
socket.

* **Queries** never enumerate: a warm lookup is an in-memory index
  hit plus one JSON line each way — sub-millisecond.
* **Submissions** that miss the store are *batched across concurrent
  clients*: the batch worker collects submissions for a short window
  (``batch_window_s``, up to ``batch_max``), dedupes them by input
  fingerprint, and runs one incremental
  :func:`~repro.litmus.campaign.run_campaign` over the union in a
  worker thread (sharded over ``jobs`` processes like any campaign).
  Every waiting client is answered from the records the campaign
  stored.
* **Watchers** receive the campaign's obs event bus live: the batch
  runs under a private :class:`~repro.obs.Telemetry` whose sink
  forwards ``campaign.*`` events (per-test verdicts, per-chunk
  progress) to every ``watch`` connection as they happen.

Shutdown (the ``shutdown`` op) drains queued submissions before
stopping, so no accepted work is dropped; the store index is merged
to disk on every batch and once more on exit.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import time
from typing import Dict, List, Optional, Set, Tuple

from ..litmus.campaign import (AllowedSetCache, canonical_test_digest,
                               run_campaign)
from ..litmus.dsl import LitmusTest
from ..litmus.harness import ENGINE_REFERENCE_MODEL
from ..litmus.runner import RunConfig
from ..obs.telemetry import Telemetry, use as _use
from ..store import VerdictStore, verdict_fingerprint
from .protocol import (MAX_LINE_BYTES, PROTOCOL, ProtocolError,
                       decode_line, encode_line, test_from_wire)

log = logging.getLogger("repro.serve")


class _Submission:
    """One queued cache-miss verification request."""

    __slots__ = ("test", "fingerprint", "future")

    def __init__(self, test: LitmusTest, fingerprint: str,
                 future: "asyncio.Future") -> None:
        self.test = test
        self.fingerprint = fingerprint
        self.future = future


class _EventBusSink:
    """Obs sink forwarding campaign events from the batch worker
    thread onto the event loop for the watch streams."""

    def __init__(self, loop: asyncio.AbstractEventLoop,
                 broadcast) -> None:
        self._loop = loop
        self._broadcast = broadcast

    def on_record(self, record: Dict) -> None:
        if record.get("type") == "event":
            self._loop.call_soon_threadsafe(self._broadcast, record)

    def close(self, summary: Dict) -> None:
        pass


class VerdictServer:
    """One store, one batch queue, many clients."""

    def __init__(self, store, config: Optional[RunConfig] = None,
                 jobs: int = 1,
                 tests: Optional[List[LitmusTest]] = None,
                 batch_window_s: float = 0.05,
                 batch_max: int = 512) -> None:
        self.store = (store if isinstance(store, VerdictStore)
                      else VerdictStore(store))
        self.config = config or RunConfig()
        self.jobs = max(1, jobs)
        self.batch_window_s = batch_window_s
        self.batch_max = max(1, batch_max)
        self._reference = ENGINE_REFERENCE_MODEL[self.config.model]
        self._pool: Optional[Dict[str, LitmusTest]] = (
            {t.name: t for t in tests} if tests is not None else None)
        #: pool-test name -> (digest, fingerprint); inline submissions
        #: are fingerprinted per request (their body may vary).
        self._fp_memo: Dict[str, Tuple[str, str]] = {}
        self._cache = AllowedSetCache()  # in-process allowed-set memo
        self.counters = {"connections": 0, "queries": 0,
                         "submissions": 0, "served_from_store": 0,
                         "batches": 0, "batched_tests": 0}
        self.address: Dict = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._queue: Optional[asyncio.Queue] = None
        self._stopping: Optional[asyncio.Event] = None
        self._watchers: Set[asyncio.Queue] = set()
        self._started_at = 0.0

    # ------------------------------------------------------------------
    # Test resolution + fingerprinting
    # ------------------------------------------------------------------
    def pool(self) -> Dict[str, LitmusTest]:
        """Known tests, lazily the library + generated suite."""
        if self._pool is None:
            from ..litmus import all_library_tests
            from ..litmus.generator import generate_all
            self._pool = {t.name: t
                          for t in generate_all() + all_library_tests()}
        return self._pool

    def _resolve(self, message: Dict) -> List[Tuple[LitmusTest, bool]]:
        """The (test, is_pool_test) targets of a query/submit."""
        targets: List[Tuple[LitmusTest, bool]] = []
        names = message.get("names", [])
        if "name" in message:
            names = list(names) + [message["name"]]
        for name in names:
            test = self.pool().get(name)
            if test is None:
                raise ProtocolError(f"unknown test {name!r}")
            targets.append((test, True))
        wires = message.get("tests", [])
        if "test" in message:
            wires = list(wires) + [message["test"]]
        for wire in wires:
            targets.append((test_from_wire(wire), False))
        if not targets:
            raise ProtocolError(
                "no target: pass name/names, test/tests, "
                "or fingerprint")
        return targets

    def _fingerprint(self, test: LitmusTest,
                     is_pool: bool) -> Tuple[str, str]:
        if is_pool and test.name in self._fp_memo:
            return self._fp_memo[test.name]
        digest = canonical_test_digest(test, self._reference)
        fingerprint = verdict_fingerprint(digest, self.config,
                                          name=test.name)
        if is_pool:
            self._fp_memo[test.name] = (digest, fingerprint)
        return digest, fingerprint

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def run(self, *, uds=None, host: str = "127.0.0.1",
                  port: int = 0, ready=None) -> None:
        """Bind, serve until ``shutdown``, then drain and clean up.

        ``ready(address)`` is called once listening — ``address`` is
        ``{"uds": path}`` or ``{"host": ..., "port": ...}`` with the
        actually-bound port.
        """
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._stopping = asyncio.Event()
        self._started_at = time.monotonic()
        if uds is not None:
            server = await asyncio.start_unix_server(
                self._handle, path=str(uds), limit=MAX_LINE_BYTES)
            self.address = {"uds": str(uds)}
        else:
            server = await asyncio.start_server(
                self._handle, host, port, limit=MAX_LINE_BYTES)
            bound = server.sockets[0].getsockname()
            self.address = {"host": bound[0], "port": bound[1]}
        batch_task = asyncio.create_task(self._batch_loop())
        log.info("serving on %s (model=%s jobs=%d store=%s)",
                 self.address, self.config.model, self.jobs,
                 self.store.root)
        if ready is not None:
            ready(self.address)
        try:
            async with server:
                await self._stopping.wait()
        finally:
            batch_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await batch_task
            self._fail_pending("server stopped")
            self.store.save()
            log.info("serve shut down: %s", self.counters)

    def _fail_pending(self, reason: str) -> None:
        if self._queue is None:
            return
        while not self._queue.empty():
            submission = self._queue.get_nowait()
            if not submission.future.done():
                submission.future.set_exception(RuntimeError(reason))
            self._queue.task_done()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        self.counters["connections"] += 1
        try:
            while not self._stopping.is_set():
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(encode_line(
                        {"ok": False, "error": "request line too long"}))
                    await writer.drain()
                    break
                if not line:
                    break
                stop_after = False
                try:
                    message = decode_line(line)
                    op = message.get("op")
                    if op == "watch":
                        await self._watch(writer)
                        break
                    stop_after = op == "shutdown"
                    response = await self._dispatch(message)
                except ProtocolError as exc:
                    response = {"ok": False, "error": str(exc)}
                except Exception as exc:  # one bad request != dead conn
                    log.exception("request failed")
                    response = {"ok": False,
                                "error": f"{type(exc).__name__}: {exc}"}
                writer.write(encode_line(response))
                await writer.drain()
                if stop_after:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _dispatch(self, message: Dict) -> Dict:
        op = message.get("op")
        if op == "ping":
            return {"ok": True, "op": "ping", "server": "repro-serve",
                    "protocol": PROTOCOL,
                    "model": str(self.config.model)}
        if op == "stats":
            return {"ok": True, "op": "stats",
                    "protocol": PROTOCOL,
                    "store": self.store.stats(),
                    "counters": dict(self.counters),
                    "pending": self._queue.qsize(),
                    "watchers": len(self._watchers),
                    "uptime_s": round(
                        time.monotonic() - self._started_at, 3)}
        if op == "query":
            return self._query(message)
        if op == "submit":
            return await self._submit(message)
        if op == "shutdown":
            asyncio.create_task(self._shutdown())
            return {"ok": True, "op": "shutdown"}
        raise ProtocolError(f"unknown op {op!r}")

    async def _shutdown(self) -> None:
        await self._queue.join()  # drain accepted work first
        self._stopping.set()

    # ------------------------------------------------------------------
    # Query / submit
    # ------------------------------------------------------------------
    def _query(self, message: Dict) -> Dict:
        self.counters["queries"] += 1
        if "fingerprint" in message:
            fingerprint = message["fingerprint"]
            record = self.store.get(fingerprint)
            result = {"fingerprint": fingerprint,
                      "hit": record is not None,
                      "verdict": record.as_dict() if record else None}
            return {"ok": True, "op": "query", "results": [result],
                    **result}
        results = []
        for test, is_pool in self._resolve(message):
            _digest, fingerprint = self._fingerprint(test, is_pool)
            record = self.store.get(fingerprint)
            results.append({"name": test.name,
                            "fingerprint": fingerprint,
                            "hit": record is not None,
                            "verdict": record.as_dict()
                            if record else None})
        response = {"ok": True, "op": "query", "results": results}
        if len(results) == 1:
            response.update(results[0])
        return response

    async def _submit(self, message: Dict) -> Dict:
        targets = self._resolve(message)
        self.counters["submissions"] += len(targets)
        waiters: List[Tuple[Dict, Optional[asyncio.Future]]] = []
        for test, is_pool in targets:
            _digest, fingerprint = self._fingerprint(test, is_pool)
            record = self.store.get(fingerprint)
            entry = {"name": test.name, "fingerprint": fingerprint}
            if record is not None and record.has_runs:
                # Warm path: answered without touching the queue.
                self.counters["served_from_store"] += 1
                entry.update(hit=True, verdict=record.as_dict())
                waiters.append((entry, None))
                continue
            future = self._loop.create_future()
            self._queue.put_nowait(
                _Submission(test, fingerprint, future))
            waiters.append((entry, future))
        results = []
        for entry, future in waiters:
            if future is not None:
                record = await future
                entry.update(hit=False, verdict=record.as_dict())
            results.append(entry)
        response = {"ok": True, "op": "submit", "results": results}
        if len(results) == 1:
            response.update(results[0])
        return response

    # ------------------------------------------------------------------
    # The batch worker
    # ------------------------------------------------------------------
    async def _batch_loop(self) -> None:
        while True:
            first = await self._queue.get()
            batch = [first]
            deadline = self._loop.time() + self.batch_window_s
            while len(batch) < self.batch_max:
                remaining = deadline - self._loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(await asyncio.wait_for(
                        self._queue.get(), remaining))
                except asyncio.TimeoutError:
                    break
            try:
                await self._run_batch(batch)
            finally:
                for _ in batch:
                    self._queue.task_done()

    async def _run_batch(self, batch: List[_Submission]) -> None:
        # Dedupe across clients: one verification per fingerprint,
        # every waiter answered from it.
        by_fingerprint: Dict[str, List[_Submission]] = {}
        unique: List[_Submission] = []
        for submission in batch:
            group = by_fingerprint.setdefault(submission.fingerprint, [])
            if not group:
                unique.append(submission)
            group.append(submission)
        self.counters["batches"] += 1
        self.counters["batched_tests"] += len(unique)
        self._broadcast({"type": "event", "name": "serve.batch",
                         "fields": {"submissions": len(batch),
                                    "tests": len(unique)}})
        tests = [submission.test for submission in unique]
        try:
            await asyncio.to_thread(self._verify, tests)
        except Exception as exc:
            log.exception("batch verification failed")
            for submission in batch:
                if not submission.future.done():
                    submission.future.set_exception(
                        RuntimeError(f"batch failed: {exc}"))
            return
        for fingerprint, group in by_fingerprint.items():
            record = self.store.peek(fingerprint)
            for submission in group:
                if submission.future.done():
                    continue
                if record is None:
                    submission.future.set_exception(RuntimeError(
                        f"batch produced no record for "
                        f"{fingerprint[:12]}"))
                else:
                    submission.future.set_result(record)

    def _verify(self, tests: List[LitmusTest]):
        """Runs on a worker thread: one incremental campaign over the
        batch, progress streamed through the private telemetry."""
        sink = _EventBusSink(self._loop, self._broadcast)
        tel = Telemetry(sinks=[sink])
        with _use(tel):
            return run_campaign(tests, self.config, jobs=self.jobs,
                                cache=self._cache, store=self.store,
                                incremental=True)

    # ------------------------------------------------------------------
    # Watch streams
    # ------------------------------------------------------------------
    def _broadcast(self, record: Dict) -> None:
        for queue in list(self._watchers):
            with contextlib.suppress(asyncio.QueueFull):
                queue.put_nowait(record)

    async def _watch(self, writer: asyncio.StreamWriter) -> None:
        queue: asyncio.Queue = asyncio.Queue(maxsize=4096)
        self._watchers.add(queue)
        try:
            writer.write(encode_line({"ok": True, "op": "watch",
                                      "protocol": PROTOCOL}))
            await writer.drain()
            while not self._stopping.is_set():
                try:
                    record = await asyncio.wait_for(queue.get(), 0.25)
                except asyncio.TimeoutError:
                    if writer.is_closing():
                        break
                    continue
                writer.write(encode_line({"event": record}))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._watchers.discard(queue)
