"""``repro serve`` — the asyncio verdict daemon.

The campaign as a long-running system: a :class:`VerdictServer` owns
one :class:`~repro.store.VerdictStore` and answers newline-JSON
requests (:mod:`repro.serve.protocol`) over TCP or a Unix domain
socket.

* **Queries** never enumerate: a warm lookup is an in-memory index
  hit plus one JSON line each way — sub-millisecond.
* **Submissions** that miss the store are *batched across concurrent
  clients*: the batch worker collects submissions for a short window
  (``batch_window_s``, up to ``batch_max``), dedupes them by input
  fingerprint, and runs one incremental
  :func:`~repro.litmus.campaign.run_campaign` over the union in a
  worker thread (sharded over ``jobs`` processes like any campaign).
  Every waiting client is answered from the records the campaign
  stored.
* **Watchers** receive the campaign's obs event bus live: batches run
  under the server's shared :class:`~repro.obs.Telemetry` whose
  event-bus sink forwards ``campaign.*`` events (per-test verdicts,
  per-chunk progress) to every ``watch`` connection as they happen.
* **Operations**: every request is timed into latency histograms and
  rolling :class:`~repro.obs.metrics.SloWindow` p50/p99 windows;
  ``health``/``ready``/``metrics`` expose liveness and a
  Prometheus-text scrape of the live registry.  Requests may carry a
  ``trace`` id which the server propagates through the batch worker
  into the campaign's worker processes, and a bounded
  :class:`~repro.obs.tracing.SpanRetainer` (head-sampling ring
  buffer) answers ``trace`` lookups over the retained records.

Shutdown (the ``shutdown`` op) drains queued submissions before
stopping, so no accepted work is dropped; the store index is merged
to disk on every batch and once more on exit, and the final
telemetry summary (plus retention drop counts) goes through the
active sinks instead of being discarded.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import time
from typing import Dict, List, Optional, Set, Tuple

from ..litmus.campaign import (AllowedSetCache, canonical_test_digest,
                               run_campaign)
from ..litmus.dsl import LitmusTest
from ..litmus.harness import ENGINE_REFERENCE_MODEL
from ..litmus.runner import RunConfig
from ..obs.metrics import SloWindow, prometheus_sample, render_prometheus
from ..obs.telemetry import Telemetry, use as _use
from ..obs.tracing import (SpanRetainer, current_trace, is_trace_id,
                           new_trace_id, use_trace)
from ..store import VerdictStore, verdict_fingerprint
from .protocol import (MAX_LINE_BYTES, PROTOCOL, ProtocolError,
                       decode_line, encode_line, test_from_wire)

log = logging.getLogger("repro.serve")


class _Submission:
    """One queued cache-miss verification request."""

    __slots__ = ("test", "fingerprint", "future", "trace")

    def __init__(self, test: LitmusTest, fingerprint: str,
                 future: "asyncio.Future",
                 trace: Optional[str] = None) -> None:
        self.test = test
        self.fingerprint = fingerprint
        self.future = future
        self.trace = trace


class _EventBusSink:
    """Obs sink forwarding campaign events from the batch worker
    thread onto the event loop for the watch streams."""

    def __init__(self, loop: asyncio.AbstractEventLoop,
                 broadcast) -> None:
        self._loop = loop
        self._broadcast = broadcast

    def on_record(self, record: Dict) -> None:
        if record.get("type") == "event":
            self._loop.call_soon_threadsafe(self._broadcast, record)

    def close(self, summary: Dict) -> None:
        pass


class VerdictServer:
    """One store, one batch queue, many clients."""

    def __init__(self, store, config: Optional[RunConfig] = None,
                 jobs: int = 1,
                 tests: Optional[List[LitmusTest]] = None,
                 batch_window_s: float = 0.05,
                 batch_max: int = 512,
                 sinks=(),
                 trace_buffer: int = 20000,
                 slo_window: int = 512) -> None:
        self.store = (store if isinstance(store, VerdictStore)
                      else VerdictStore(store))
        self.config = config or RunConfig()
        self.jobs = max(1, jobs)
        self.batch_window_s = batch_window_s
        self.batch_max = max(1, batch_max)
        self.retainer = SpanRetainer(max_records=trace_buffer)
        self.telemetry = Telemetry(sinks=[self.retainer, *sinks])
        self.slo_window = max(1, slo_window)
        self._slo: Dict[str, SloWindow] = {}
        self._reference = ENGINE_REFERENCE_MODEL[self.config.model]
        self._pool: Optional[Dict[str, LitmusTest]] = (
            {t.name: t for t in tests} if tests is not None else None)
        #: pool-test name -> (digest, fingerprint); inline submissions
        #: are fingerprinted per request (their body may vary).
        self._fp_memo: Dict[str, Tuple[str, str]] = {}
        self._cache = AllowedSetCache()  # in-process allowed-set memo
        self.counters = {"connections": 0, "queries": 0,
                         "submissions": 0, "served_from_store": 0,
                         "batches": 0, "batched_tests": 0}
        self.address: Dict = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._queue: Optional[asyncio.Queue] = None
        self._stopping: Optional[asyncio.Event] = None
        self._watchers: Set[asyncio.Queue] = set()
        self._started_at = 0.0

    # ------------------------------------------------------------------
    # Test resolution + fingerprinting
    # ------------------------------------------------------------------
    def pool(self) -> Dict[str, LitmusTest]:
        """Known tests, lazily the library + generated suite."""
        if self._pool is None:
            from ..litmus import all_library_tests
            from ..litmus.generator import generate_all
            self._pool = {t.name: t
                          for t in generate_all() + all_library_tests()}
        return self._pool

    def _resolve(self, message: Dict) -> List[Tuple[LitmusTest, bool]]:
        """The (test, is_pool_test) targets of a query/submit."""
        targets: List[Tuple[LitmusTest, bool]] = []
        names = message.get("names", [])
        if "name" in message:
            names = list(names) + [message["name"]]
        for name in names:
            test = self.pool().get(name)
            if test is None:
                raise ProtocolError(f"unknown test {name!r}")
            targets.append((test, True))
        wires = message.get("tests", [])
        if "test" in message:
            wires = list(wires) + [message["test"]]
        for wire in wires:
            targets.append((test_from_wire(wire), False))
        if not targets:
            raise ProtocolError(
                "no target: pass name/names, test/tests, "
                "or fingerprint")
        return targets

    def _fingerprint(self, test: LitmusTest,
                     is_pool: bool) -> Tuple[str, str]:
        if is_pool and test.name in self._fp_memo:
            return self._fp_memo[test.name]
        digest = canonical_test_digest(test, self._reference)
        fingerprint = verdict_fingerprint(digest, self.config,
                                          name=test.name)
        if is_pool:
            self._fp_memo[test.name] = (digest, fingerprint)
        return digest, fingerprint

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def run(self, *, uds=None, host: str = "127.0.0.1",
                  port: int = 0, ready=None) -> None:
        """Bind, serve until ``shutdown``, then drain and clean up.

        ``ready(address)`` is called once listening — ``address`` is
        ``{"uds": path}`` or ``{"host": ..., "port": ...}`` with the
        actually-bound port.
        """
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._stopping = asyncio.Event()
        self._started_at = time.monotonic()
        if uds is not None:
            server = await asyncio.start_unix_server(
                self._handle, path=str(uds), limit=MAX_LINE_BYTES)
            self.address = {"uds": str(uds)}
        else:
            server = await asyncio.start_server(
                self._handle, host, port, limit=MAX_LINE_BYTES)
            bound = server.sockets[0].getsockname()
            self.address = {"host": bound[0], "port": bound[1]}
        self.telemetry.sinks.append(
            _EventBusSink(self._loop, self._broadcast))
        batch_task = asyncio.create_task(self._batch_loop())
        log.info("serving on %s (model=%s jobs=%d store=%s)",
                 self.address, self.config.model, self.jobs,
                 self.store.root)
        if ready is not None:
            ready(self.address)
        try:
            async with server:
                await self._stopping.wait()
        finally:
            batch_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await batch_task
            self._fail_pending("server stopped")
            self.store.save()
            self._finalize_telemetry()
            log.info("serve shut down: %s", self.counters)

    def _finalize_telemetry(self) -> None:
        """Last words: latency + retention accounting to the log, then
        the final summary (counters + histogram snapshots) through the
        active sinks — nothing observed is silently dropped."""
        latency = self.telemetry.metrics.histogram(
            "serve.request_latency_s")
        log.info("serve request latency: n=%d p50=%.6fs p99=%.6fs",
                 latency.count, latency.percentile(50),
                 latency.percentile(99))
        stats = self.retainer.stats()
        log.info(
            "serve trace retention: %(retained)d retained "
            "(%(retained_total)d total), %(evicted)d evicted, "
            "%(sampled_out_traces)d trace(s) sampled out "
            "(%(sampled_out_records)d records)", stats)
        self.telemetry.close()

    def _fail_pending(self, reason: str) -> None:
        if self._queue is None:
            return
        while not self._queue.empty():
            submission = self._queue.get_nowait()
            if not submission.future.done():
                submission.future.set_exception(RuntimeError(reason))
            self._queue.task_done()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        self.counters["connections"] += 1
        try:
            while not self._stopping.is_set():
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(encode_line(
                        {"ok": False, "error": "request line too long"}))
                    await writer.drain()
                    break
                if not line:
                    break
                stop_after = False
                op: Optional[str] = None
                trace: Optional[str] = None
                started = time.perf_counter()
                try:
                    message = decode_line(line)
                    op = message.get("op")
                    trace = message.get("trace")
                    if trace is not None and not is_trace_id(trace):
                        trace = None
                        raise ProtocolError(
                            "trace must be a string of at most 64 "
                            "[0-9a-zA-Z_.:-] characters")
                    if op == "watch":
                        await self._watch(writer)
                        break
                    stop_after = op == "shutdown"
                    with use_trace(trace):
                        response = await self._dispatch(message)
                except ProtocolError as exc:
                    response = {"ok": False, "error": str(exc)}
                except Exception as exc:  # one bad request != dead conn
                    log.exception("request failed")
                    response = {"ok": False,
                                "error": f"{type(exc).__name__}: {exc}"}
                self._observe_request(op, trace, started,
                                      response.get("ok", False))
                writer.write(encode_line(response))
                await writer.drain()
                if stop_after:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    def _observe_request(self, op: Optional[str], trace: Optional[str],
                         started: float, ok: bool) -> None:
        """Per-request accounting: op counters, lifetime latency
        histograms, rolling SLO windows, and a ``serve.request`` span
        on the request's trace (when it carried one)."""
        label = op if isinstance(op, str) and op else "invalid"
        elapsed = time.perf_counter() - started
        metrics = self.telemetry.metrics
        metrics.counter(f"serve.requests.{label}").inc()
        if not ok:
            metrics.counter("serve.errors").inc()
        metrics.histogram("serve.request_latency_s").observe(elapsed)
        metrics.histogram(f"serve.latency.{label}").observe(elapsed)
        window = self._slo.get(label)
        if window is None:
            window = self._slo[label] = SloWindow(label,
                                                  size=self.slo_window)
        window.observe(elapsed)
        with use_trace(trace):
            self.telemetry.record_span(
                "serve.request", started, started + elapsed,
                attrs={"op": label, "ok": bool(ok)})

    async def _dispatch(self, message: Dict) -> Dict:
        op = message.get("op")
        if op == "ping":
            return {"ok": True, "op": "ping", "server": "repro-serve",
                    "protocol": PROTOCOL,
                    "model": str(self.config.model)}
        if op == "stats":
            return {"ok": True, "op": "stats",
                    "protocol": PROTOCOL,
                    "store": self.store.stats(),
                    "counters": dict(self.counters),
                    "pending": self._queue.qsize(),
                    "watchers": len(self._watchers),
                    "uptime_s": round(
                        time.monotonic() - self._started_at, 3)}
        if op == "health":
            return {"ok": True, "op": "health", "status": "ok",
                    "server": "repro-serve", "protocol": PROTOCOL,
                    "uptime_s": round(
                        time.monotonic() - self._started_at, 3)}
        if op == "ready":
            ready = (self._queue is not None
                     and not self._stopping.is_set())
            return {"ok": True, "op": "ready", "ready": ready,
                    "pending": self._queue.qsize() if self._queue
                    else 0}
        if op == "metrics":
            return {"ok": True, "op": "metrics",
                    "content_type":
                        "text/plain; version=0.0.4; charset=utf-8",
                    "body": self._render_metrics()}
        if op == "trace":
            trace_id = message.get("trace")
            if not trace_id:
                raise ProtocolError("trace op requires a 'trace' id")
            records = self.retainer.for_trace(trace_id)
            return {"ok": True, "op": "trace", "trace": trace_id,
                    "count": len(records), "records": records,
                    "retainer": self.retainer.stats()}
        if op == "query":
            return self._query(message)
        if op == "submit":
            return await self._submit(message)
        if op == "shutdown":
            asyncio.create_task(self._shutdown())
            return {"ok": True, "op": "shutdown"}
        raise ProtocolError(f"unknown op {op!r}")

    async def _shutdown(self) -> None:
        await self._queue.join()  # drain accepted work first
        self._stopping.set()

    def _render_metrics(self) -> str:
        """Prometheus text exposition 0.0.4 of the live registry plus
        server gauges: uptime, request counters, store hit-rate, SLO
        window p50/p99 per op, and trace-retention accounting."""
        extra = ["# TYPE repro_serve_uptime_seconds gauge",
                 prometheus_sample("repro_serve_uptime_seconds", None,
                                   time.monotonic() - self._started_at)]
        for name, value in sorted(self.counters.items()):
            metric = f"repro_serve_{name}_total"
            extra.append(f"# TYPE {metric} counter")
            extra.append(prometheus_sample(metric, None, value))
        store = self.store.stats()
        lookups = store["hits"] + store["misses"]
        hit_rate = store["hits"] / lookups if lookups else 0.0
        for name, value in (("store_records", store["records"]),
                            ("store_hit_rate", hit_rate),
                            ("pending_submissions",
                             self._queue.qsize() if self._queue else 0),
                            ("watchers", len(self._watchers))):
            metric = f"repro_serve_{name}"
            extra.append(f"# TYPE {metric} gauge")
            extra.append(prometheus_sample(metric, None, value))
        if self._slo:
            extra.append("# TYPE repro_serve_slo_latency_seconds gauge")
            extra.append("# TYPE repro_serve_slo_window_requests gauge")
            for op, window in sorted(self._slo.items()):
                snap = window.as_dict()
                for quantile in ("p50", "p99"):
                    extra.append(prometheus_sample(
                        "repro_serve_slo_latency_seconds",
                        {"op": op, "quantile": quantile},
                        snap[quantile]))
                extra.append(prometheus_sample(
                    "repro_serve_slo_window_requests", {"op": op},
                    snap["window"]))
        retention = self.retainer.stats()
        for name in ("retained", "evicted", "sampled_out_traces",
                     "sampled_out_records"):
            metric = f"repro_serve_trace_{name}"
            extra.append(f"# TYPE {metric} gauge")
            extra.append(prometheus_sample(metric, None,
                                           retention[name]))
        return render_prometheus(self.telemetry.metrics, extra)

    # ------------------------------------------------------------------
    # Query / submit
    # ------------------------------------------------------------------
    def _query(self, message: Dict) -> Dict:
        self.counters["queries"] += 1
        if "fingerprint" in message:
            fingerprint = message["fingerprint"]
            record = self.store.get(fingerprint)
            result = {"fingerprint": fingerprint,
                      "hit": record is not None,
                      "verdict": record.as_dict() if record else None}
            return {"ok": True, "op": "query", "results": [result],
                    **result}
        results = []
        for test, is_pool in self._resolve(message):
            _digest, fingerprint = self._fingerprint(test, is_pool)
            record = self.store.get(fingerprint)
            results.append({"name": test.name,
                            "fingerprint": fingerprint,
                            "hit": record is not None,
                            "verdict": record.as_dict()
                            if record else None})
        response = {"ok": True, "op": "query", "results": results}
        if len(results) == 1:
            response.update(results[0])
        return response

    async def _submit(self, message: Dict) -> Dict:
        context = current_trace()
        trace_id = context.trace_id if context is not None else None
        targets = self._resolve(message)
        self.counters["submissions"] += len(targets)
        waiters: List[Tuple[Dict, Optional[asyncio.Future]]] = []
        lookup_start = time.perf_counter()
        hits = 0
        for test, is_pool in targets:
            _digest, fingerprint = self._fingerprint(test, is_pool)
            record = self.store.get(fingerprint)
            entry = {"name": test.name, "fingerprint": fingerprint}
            if record is not None and record.has_runs:
                # Warm path: answered without touching the queue.
                self.counters["served_from_store"] += 1
                hits += 1
                entry.update(hit=True, verdict=record.as_dict())
                waiters.append((entry, None))
                continue
            future = self._loop.create_future()
            self._queue.put_nowait(
                _Submission(test, fingerprint, future, trace_id))
            waiters.append((entry, future))
        self.telemetry.record_span(
            "serve.store.lookup", lookup_start, time.perf_counter(),
            attrs={"targets": len(targets), "hits": hits})
        queued = sum(1 for _entry, future in waiters
                     if future is not None)
        wait_start = time.perf_counter()
        results = []
        for entry, future in waiters:
            if future is not None:
                record = await future
                entry.update(hit=False, verdict=record.as_dict())
            results.append(entry)
        if queued:
            self.telemetry.record_span(
                "serve.submit.wait", wait_start, time.perf_counter(),
                attrs={"queued": queued})
        response = {"ok": True, "op": "submit", "results": results}
        if trace_id is not None:
            response["trace"] = trace_id
        if len(results) == 1:
            response.update(results[0])
        return response

    # ------------------------------------------------------------------
    # The batch worker
    # ------------------------------------------------------------------
    async def _batch_loop(self) -> None:
        while True:
            first = await self._queue.get()
            window_start = time.perf_counter()
            batch = [first]
            deadline = self._loop.time() + self.batch_window_s
            while len(batch) < self.batch_max:
                remaining = deadline - self._loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(await asyncio.wait_for(
                        self._queue.get(), remaining))
                except asyncio.TimeoutError:
                    break
            try:
                await self._run_batch(batch, window_start)
            finally:
                for _ in batch:
                    self._queue.task_done()

    def _batch_trace(self, batch: List[_Submission]
                     ) -> Tuple[Optional[str], List[str]]:
        """The trace a batch runs under: a batch whose members all
        came from one trace continues it; one coalescing several
        traces gets a fresh id (members stay linked through the
        ``serve.batch`` event's ``traces`` field); untraced batches
        run untraced."""
        members = sorted({s.trace for s in batch if s.trace})
        if not members:
            return None, members
        if len(members) == 1:
            return members[0], members
        return new_trace_id(), members

    async def _run_batch(self, batch: List[_Submission],
                         window_start: float) -> None:
        # Dedupe across clients: one verification per fingerprint,
        # every waiter answered from it.
        by_fingerprint: Dict[str, List[_Submission]] = {}
        unique: List[_Submission] = []
        for submission in batch:
            group = by_fingerprint.setdefault(submission.fingerprint, [])
            if not group:
                unique.append(submission)
            group.append(submission)
        self.counters["batches"] += 1
        self.counters["batched_tests"] += len(unique)
        self.telemetry.metrics.histogram(
            "serve.batch_submissions").observe(len(batch))
        self.telemetry.metrics.histogram(
            "serve.batch_tests").observe(len(unique))
        batch_trace, member_traces = self._batch_trace(batch)
        tests = [submission.test for submission in unique]
        with use_trace(batch_trace):
            # The event reaches watchers via the event-bus sink.
            self.telemetry.event("serve.batch",
                                 submissions=len(batch),
                                 tests=len(unique),
                                 traces=member_traces)
            self.telemetry.record_span(
                "serve.batch.window", window_start,
                time.perf_counter(),
                attrs={"submissions": len(batch)})
            try:
                # to_thread copies this context: the campaign (and its
                # worker processes) inherit the batch trace.
                await asyncio.to_thread(self._verify, tests)
            except Exception as exc:
                log.exception("batch verification failed")
                for submission in batch:
                    if not submission.future.done():
                        submission.future.set_exception(
                            RuntimeError(f"batch failed: {exc}"))
                return
        for fingerprint, group in by_fingerprint.items():
            record = self.store.peek(fingerprint)
            for submission in group:
                if submission.future.done():
                    continue
                if record is None:
                    submission.future.set_exception(RuntimeError(
                        f"batch produced no record for "
                        f"{fingerprint[:12]}"))
                else:
                    submission.future.set_result(record)

    def _verify(self, tests: List[LitmusTest]):
        """Runs on a worker thread: one incremental campaign over the
        batch, under the server's shared telemetry (events reach the
        watch streams, spans land in the trace retainer, metrics
        accumulate in the scrapeable registry)."""
        with _use(self.telemetry):
            return run_campaign(tests, self.config, jobs=self.jobs,
                                cache=self._cache, store=self.store,
                                incremental=True)

    # ------------------------------------------------------------------
    # Watch streams
    # ------------------------------------------------------------------
    def _broadcast(self, record: Dict) -> None:
        for queue in list(self._watchers):
            with contextlib.suppress(asyncio.QueueFull):
                queue.put_nowait(record)

    async def _watch(self, writer: asyncio.StreamWriter) -> None:
        queue: asyncio.Queue = asyncio.Queue(maxsize=4096)
        self._watchers.add(queue)
        try:
            writer.write(encode_line({"ok": True, "op": "watch",
                                      "protocol": PROTOCOL}))
            await writer.drain()
            while not self._stopping.is_set():
                try:
                    record = await asyncio.wait_for(queue.get(), 0.25)
                except asyncio.TimeoutError:
                    if writer.is_closing():
                        break
                    continue
                writer.write(encode_line({"event": record}))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._watchers.discard(queue)
