"""The ``repro serve`` wire protocol: newline-delimited JSON.

One request per line, one response per line, over TCP or a Unix
domain socket.  Every request is an object with an ``op`` field;
every response carries ``ok`` (and ``error`` when ``ok`` is false).
The ``watch`` op switches the connection into a one-way event stream
(one ``{"event": ...}`` object per line) fed from the campaign's obs
event bus.

Ops
===

==========  ==========================================================
``ping``     liveness + protocol/server identification
``stats``    store + server counters
``health``   liveness probe: status, protocol, uptime
``ready``    readiness probe: batch queue up and accepting work
``metrics``  Prometheus text exposition (format 0.0.4) of the live
             metrics registry in the response's ``body`` field
``trace``    retained telemetry records for one ``trace`` id, plus
             span-retainer accounting
``query``    verdict lookup by ``name`` (known test), inline ``test``,
             or raw ``fingerprint``; never enumerates
``submit``   verify one ``name``/``test`` (or a ``names``/``tests``
             suite); cache misses are batched across concurrent
             clients into one sharded campaign; responds when the
             verdict is stored
``watch``    subscribe to campaign progress events
``shutdown`` drain and stop the daemon
==========  ==========================================================

Any request may carry an optional ``trace`` field (a short
``[0-9a-zA-Z_.:-]`` id, at most 64 chars): the server runs the
request under that trace id, stamping it on every telemetry record
the request produces — through the batch worker and into the
campaign's worker processes — so one ``submit`` yields one coherent
cross-process timeline, retrievable via the ``trace`` op.
:meth:`repro.serve.client.ServeClient.submit` mints an id per submit
when the caller does not supply one.

Litmus tests travel as plain JSON (:func:`test_to_wire` /
:func:`test_from_wire`): name, category, and the DSL op threads, with
fence kinds flattened to their string values.
"""

from __future__ import annotations

import json
from typing import Dict, List

from ..litmus.dsl import LitmusTest
from ..memmodel.events import FenceKind

PROTOCOL = "repro.serve/v1"

#: One request/response line may not exceed this (keeps a misbehaving
#: client from ballooning the reader buffer).
MAX_LINE_BYTES = 8 * 1024 * 1024


class ProtocolError(ValueError):
    """Malformed request or unserialisable test."""


def encode_line(message: Dict) -> bytes:
    return (json.dumps(message, sort_keys=True,
                       separators=(",", ":")) + "\n").encode()


def decode_line(line: bytes) -> Dict:
    try:
        message = json.loads(line.decode())
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"not valid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("request must be a JSON object")
    return message


def _op_to_wire(op: tuple) -> List:
    wire = list(op)
    if wire and wire[0] == "F" and len(wire) > 1:
        wire[1] = wire[1].value if isinstance(wire[1], FenceKind) \
            else str(wire[1])
    return wire


def _op_from_wire(raw) -> tuple:
    if not isinstance(raw, list) or not raw or \
            not isinstance(raw[0], str):
        raise ProtocolError(f"malformed litmus op {raw!r}")
    op = list(raw)
    if op[0] == "F" and len(op) > 1:
        try:
            op[1] = FenceKind(op[1])
        except ValueError:
            raise ProtocolError(
                f"unknown fence kind {op[1]!r}") from None
    return tuple(op)


def test_to_wire(test: LitmusTest) -> Dict:
    """A :class:`LitmusTest` as a JSON-ready dict."""
    return {
        "name": test.name,
        "category": test.category,
        "threads": [[_op_to_wire(op) for op in thread]
                    for thread in test.threads],
    }


def test_from_wire(payload: Dict) -> LitmusTest:
    """Rebuild a :class:`LitmusTest` from its wire form."""
    if not isinstance(payload, dict):
        raise ProtocolError("test must be a JSON object")
    try:
        name = payload["name"]
        threads = payload["threads"]
    except KeyError as exc:
        raise ProtocolError(f"test missing field {exc}") from None
    if not isinstance(name, str) or not name:
        raise ProtocolError("test name must be a non-empty string")
    if not isinstance(threads, list) or not threads:
        raise ProtocolError("test threads must be a non-empty list")
    return LitmusTest(
        name=name,
        category=str(payload.get("category", "submitted")),
        threads=[[_op_from_wire(op) for op in thread]
                 for thread in threads],
    )
