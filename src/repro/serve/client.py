"""Blocking client for the ``repro serve`` daemon.

Thin by design: one socket, one request line out, one response line
back (:mod:`repro.serve.protocol`).  Intended both for scripting
(``ServeClient(uds=...).query(name="SB")``) and as the transport
behind the ``repro serve-*`` CLI verbs and the e2e tests.
"""

from __future__ import annotations

import socket
import time
from typing import Dict, Iterator, List, Optional

from ..litmus.dsl import LitmusTest
from ..obs.telemetry import WALL, current as _current_telemetry
from ..obs.tracing import new_trace_id, use_trace
from .protocol import decode_line, encode_line, test_to_wire


class ServeError(RuntimeError):
    """The server answered ``ok: false`` or the connection died."""


class ServeClient:
    """Synchronous newline-JSON client (TCP or Unix domain socket).

    Usable as a context manager; one instance == one connection.  A
    connection in ``watch`` mode becomes a one-way event stream and
    cannot issue further requests — use a second client for that.
    """

    def __init__(self, uds=None, host: Optional[str] = None,
                 port: Optional[int] = None,
                 timeout: float = 300.0) -> None:
        if uds is not None:
            self._sock = socket.socket(socket.AF_UNIX,
                                       socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(str(uds))
        elif host is not None and port is not None:
            self._sock = socket.create_connection((host, port),
                                                  timeout=timeout)
        else:
            raise ValueError("need uds=... or host=.../port=...")
        self._file = self._sock.makefile("rwb")

    # ------------------------------------------------------------------
    def request(self, op: str, **fields) -> Dict:
        """Send one op, return the decoded response; raises
        :class:`ServeError` on ``ok: false`` or a dropped connection."""
        message = {"op": op}
        message.update(fields)
        self._file.write(encode_line(message))
        self._file.flush()
        response = self._read_line()
        if not response.get("ok", False):
            raise ServeError(response.get("error", "request failed"))
        return response

    def _read_line(self) -> Dict:
        line = self._file.readline()
        if not line:
            raise ServeError("connection closed by server")
        return decode_line(line)

    # ------------------------------------------------------------------
    # Op wrappers
    # ------------------------------------------------------------------
    def ping(self) -> Dict:
        return self.request("ping")

    def stats(self) -> Dict:
        return self.request("stats")

    def health(self) -> Dict:
        return self.request("health")

    def ready(self) -> Dict:
        return self.request("ready")

    def metrics_text(self) -> str:
        """The server's Prometheus text exposition."""
        return self.request("metrics")["body"]

    def fetch_trace(self, trace_id: str,
                    lane_base: Optional[int] = None) -> List[Dict]:
        """Retained server-side records for ``trace_id``.

        The server's wall timestamps come from its own
        ``perf_counter`` epoch, so its spans cannot share a lane with
        this process's records; pass ``lane_base`` to shift the
        server records onto their own lanes before merging the two
        record streams into one Chrome trace.
        """
        records = self.request("trace", trace=trace_id)["records"]
        if lane_base is not None:
            for record in records:
                if record.get("track") == WALL:
                    record["lane"] = lane_base + int(
                        record.get("lane", 0))
        return records

    def query(self, name: Optional[str] = None,
              names: Optional[List[str]] = None,
              test: Optional[LitmusTest] = None,
              fingerprint: Optional[str] = None,
              trace: Optional[str] = None) -> Dict:
        fields: Dict = {}
        if name is not None:
            fields["name"] = name
        if names is not None:
            fields["names"] = list(names)
        if test is not None:
            fields["test"] = test_to_wire(test)
        if fingerprint is not None:
            fields["fingerprint"] = fingerprint
        if trace is not None:
            fields["trace"] = trace
        return self.request("query", **fields)

    def submit(self, name: Optional[str] = None,
               names: Optional[List[str]] = None,
               test: Optional[LitmusTest] = None,
               tests: Optional[List[LitmusTest]] = None,
               trace: Optional[str] = None) -> Dict:
        """Submit for verification; every submit runs under a trace.

        ``trace`` continues an existing trace; otherwise a fresh id
        is minted (echoed back in the response's ``trace`` field).
        When ambient telemetry is enabled, the client's own wait is
        recorded as a ``serve.client.submit`` span on that trace, so
        a server-side ``fetch_trace`` plus the local records yields
        the full client → server → worker timeline.
        """
        fields: Dict = {}
        if name is not None:
            fields["name"] = name
        if names is not None:
            fields["names"] = list(names)
        if test is not None:
            fields["test"] = test_to_wire(test)
        if tests is not None:
            fields["tests"] = [test_to_wire(t) for t in tests]
        fields["trace"] = trace if trace is not None else new_trace_id()
        telemetry = _current_telemetry()
        started = time.perf_counter()
        with use_trace(fields["trace"]):
            response = self.request("submit", **fields)
            if telemetry.enabled:
                telemetry.record_span(
                    "serve.client.submit", started,
                    time.perf_counter(),
                    attrs={"targets": len(response.get("results", []))})
        return response

    def shutdown(self) -> Dict:
        return self.request("shutdown")

    def watch(self) -> Iterator[Dict]:
        """Switch this connection into watch mode; yields campaign
        events until the server stops or the caller closes."""
        self.request("watch")
        while True:
            try:
                message = self._read_line()
            except ServeError:
                return
            if "event" in message:
                yield message["event"]

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
