"""Blocking client for the ``repro serve`` daemon.

Thin by design: one socket, one request line out, one response line
back (:mod:`repro.serve.protocol`).  Intended both for scripting
(``ServeClient(uds=...).query(name="SB")``) and as the transport
behind the ``repro serve-*`` CLI verbs and the e2e tests.
"""

from __future__ import annotations

import socket
from typing import Dict, Iterator, List, Optional

from ..litmus.dsl import LitmusTest
from .protocol import decode_line, encode_line, test_to_wire


class ServeError(RuntimeError):
    """The server answered ``ok: false`` or the connection died."""


class ServeClient:
    """Synchronous newline-JSON client (TCP or Unix domain socket).

    Usable as a context manager; one instance == one connection.  A
    connection in ``watch`` mode becomes a one-way event stream and
    cannot issue further requests — use a second client for that.
    """

    def __init__(self, uds=None, host: Optional[str] = None,
                 port: Optional[int] = None,
                 timeout: float = 300.0) -> None:
        if uds is not None:
            self._sock = socket.socket(socket.AF_UNIX,
                                       socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(str(uds))
        elif host is not None and port is not None:
            self._sock = socket.create_connection((host, port),
                                                  timeout=timeout)
        else:
            raise ValueError("need uds=... or host=.../port=...")
        self._file = self._sock.makefile("rwb")

    # ------------------------------------------------------------------
    def request(self, op: str, **fields) -> Dict:
        """Send one op, return the decoded response; raises
        :class:`ServeError` on ``ok: false`` or a dropped connection."""
        message = {"op": op}
        message.update(fields)
        self._file.write(encode_line(message))
        self._file.flush()
        response = self._read_line()
        if not response.get("ok", False):
            raise ServeError(response.get("error", "request failed"))
        return response

    def _read_line(self) -> Dict:
        line = self._file.readline()
        if not line:
            raise ServeError("connection closed by server")
        return decode_line(line)

    # ------------------------------------------------------------------
    # Op wrappers
    # ------------------------------------------------------------------
    def ping(self) -> Dict:
        return self.request("ping")

    def stats(self) -> Dict:
        return self.request("stats")

    def query(self, name: Optional[str] = None,
              names: Optional[List[str]] = None,
              test: Optional[LitmusTest] = None,
              fingerprint: Optional[str] = None) -> Dict:
        fields: Dict = {}
        if name is not None:
            fields["name"] = name
        if names is not None:
            fields["names"] = list(names)
        if test is not None:
            fields["test"] = test_to_wire(test)
        if fingerprint is not None:
            fields["fingerprint"] = fingerprint
        return self.request("query", **fields)

    def submit(self, name: Optional[str] = None,
               names: Optional[List[str]] = None,
               test: Optional[LitmusTest] = None,
               tests: Optional[List[LitmusTest]] = None) -> Dict:
        fields: Dict = {}
        if name is not None:
            fields["name"] = name
        if names is not None:
            fields["names"] = list(names)
        if test is not None:
            fields["test"] = test_to_wire(test)
        if tests is not None:
            fields["tests"] = [test_to_wire(t) for t in tests]
        return self.request("submit", **fields)

    def shutdown(self) -> Dict:
        return self.request("shutdown")

    def watch(self) -> Iterator[Dict]:
        """Switch this connection into watch mode; yields campaign
        events until the server stops or the caller closes."""
        self.request("watch")
        while True:
            try:
                message = self._read_line()
            except ServeError:
                return
            if "event" in message:
                yield message["event"]

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
