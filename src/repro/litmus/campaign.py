"""Parallel sharded litmus campaign engine.

The paper's §6.3 correctness claim rests on a ~1600-test campaign
with faults injected on every location.  This module runs that
campaign at scale, herd7-style:

* **Sharding** — tests are dispatched in chunks to a
  ``multiprocessing`` worker pool (``jobs`` workers); ``jobs=1`` is a
  plain in-process loop with no pool overhead.  Scheduler seeds are
  derived per test from a stable digest
  (:func:`repro.litmus.runner.derive_seed`), so the merged
  :class:`~repro.litmus.harness.SuiteReport` carries outcome sets
  bit-identical to a serial run regardless of sharding.
* **Allowed-set cache** — ``allowed_outcomes`` is a pure function of
  a test's event structure and reference model, so
  :class:`AllowedSetCache` memoizes it in-process and optionally
  persists it to a JSON file keyed by :func:`canonical_test_digest`;
  repeat campaigns skip re-enumeration entirely.
* **Observability** — per-test wall time and exception counters land
  in each :class:`~repro.litmus.harness.TestVerdict`; chunk-level
  progress goes to the ``repro.litmus.campaign`` logger; the merged
  report records campaign wall time, job count, and cache hit/miss
  counts (serialised to JSON by
  :func:`repro.analysis.postprocess.write_campaign_report`).
"""

from __future__ import annotations

import hashlib
import json
import logging
import multiprocessing
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..obs.sinks import MemorySink
from ..obs.tracing import current_trace, use_trace
from ..obs.telemetry import (WALL, Telemetry, current as _telemetry,
                             reset_current, use as _use)
from .dsl import LitmusTest
from .harness import (ENGINE_REFERENCE_MODEL, SuiteReport, TestVerdict,
                      check_test)
from .runner import Outcome, RunConfig

log = logging.getLogger("repro.litmus.campaign")

CACHE_SCHEMA = "repro.litmus.allowed-cache/v1"


# ----------------------------------------------------------------------
# Canonical test identity
# ----------------------------------------------------------------------
def canonical_test_digest(test: LitmusTest, model_name: str) -> str:
    """Stable digest of a test's event structure under one model.

    Built from the axiomatic compilation (events + dependency edges)
    with event uids normalised to ``(thread, index)`` positions, so
    the digest is independent of process-global uid counters, test
    names, and suite order.  Two tests with the same digest have the
    same allowed set by construction.
    """
    threads, edges = test.to_events()
    uid_pos: Dict[int, Tuple[int, int]] = {}
    for tid, events in enumerate(threads):
        for i, event in enumerate(events):
            uid_pos[event.uid] = (tid, i)
    payload = {
        "model": model_name,
        "threads": [
            [
                [
                    event.kind.value,
                    event.addr,
                    event.value,
                    event.fence.value if event.fence is not None else None,
                    event.tag,
                ]
                for event in events
            ]
            for events in threads
        ],
        "edges": sorted(list(uid_pos[a]) + list(uid_pos[b])
                        for a, b in edges),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# ----------------------------------------------------------------------
# Allowed-set cache
# ----------------------------------------------------------------------
def _encode_outcomes(outcomes: Set[Outcome]) -> List[List[List]]:
    return sorted([list(pair) for pair in outcome] for outcome in outcomes)


def _decode_outcomes(raw) -> Set[Outcome]:
    return {tuple(tuple(pair) for pair in outcome) for outcome in raw}


class AllowedSetCache:
    """In-process + optionally file-backed allowed-set memo.

    Keys are :func:`canonical_test_digest` hex strings; values are
    allowed outcome sets.  With a ``path``, the cache loads existing
    entries on construction and :meth:`save` persists them back via
    read-merge-replace under an advisory lock: on-disk entries written
    by a concurrent campaign since our load are folded in before the
    atomic rename, so parallel campaigns sharing one cache file lose
    zero entries.  ``hits``/``misses`` count :meth:`get` lookups and
    are the campaign report's single source of cache accounting.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self.path = Path(path) if path is not None else None
        self._memo: Dict[str, Set[Outcome]] = {}
        self.hits = 0
        self.misses = 0
        if self.path is not None:
            tmp = self.path.with_suffix(self.path.suffix + ".tmp")
            if tmp.exists():
                log.warning("removing orphaned cache temp file %s "
                            "(crashed save?)", tmp)
                try:
                    tmp.unlink()
                except OSError:
                    pass
            self._memo.update(self._read_entries(self.path))

    @staticmethod
    def _read_entries(path: Path) -> Dict[str, Set[Outcome]]:
        """Entries of one on-disk cache file; loud about damage."""
        if not path.exists():
            return {}
        try:
            raw = json.loads(path.read_text())
        except OSError:
            return {}
        except ValueError:
            log.warning("ignoring corrupt allowed-set cache %s "
                        "(not valid JSON)", path)
            return {}
        schema = raw.get("schema") if isinstance(raw, dict) else None
        if schema != CACHE_SCHEMA:
            log.warning("ignoring allowed-set cache %s: schema %r "
                        "(expected %r)", path, schema, CACHE_SCHEMA)
            return {}
        return {digest: _decode_outcomes(outcomes)
                for digest, outcomes in raw.get("entries", {}).items()}

    def __len__(self) -> int:
        return len(self._memo)

    def get(self, digest: str) -> Optional[Set[Outcome]]:
        found = self._memo.get(digest)
        if found is None:
            self.misses += 1
        else:
            self.hits += 1
        return found

    def put(self, digest: str, allowed: Set[Outcome]) -> None:
        self._memo[digest] = set(allowed)

    def save(self) -> None:
        if self.path is None:
            return
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        lock_path = self.path.with_suffix(self.path.suffix + ".lock")
        tmp.parent.mkdir(parents=True, exist_ok=True)
        with open(lock_path, "w") as lock:
            try:
                import fcntl
                fcntl.flock(lock, fcntl.LOCK_EX)
            except ImportError:  # pragma: no cover - non-POSIX
                pass
            # Merge-on-save: a concurrent campaign may have persisted
            # entries since our load; fold them in (allowed sets for
            # one digest are identical by construction, so keeping
            # ours on overlap is safe) instead of clobbering them.
            for digest, outcomes in self._read_entries(self.path).items():
                self._memo.setdefault(digest, outcomes)
            payload = {
                "schema": CACHE_SCHEMA,
                "entries": {digest: _encode_outcomes(outcomes)
                            for digest, outcomes
                            in sorted(self._memo.items())},
            }
            tmp.write_text(json.dumps(payload, indent=1, sort_keys=True))
            os.replace(tmp, self.path)


#: Process-wide memo used when the caller passes no cache: repeat
#: campaigns in one process (tests, notebooks) still skip
#: re-enumeration.
_PROCESS_CACHE = AllowedSetCache()


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _check_chunk(payload):
    """Run one shard; top-level so it pickles under any start method.

    ``payload`` is ``(chunk_index, tests, config, allowed_sets,
    telemetry_on, trace_id)`` with ``allowed_sets[i]`` the cached
    allowed set for ``tests[i]`` or ``None`` (the worker then
    enumerates it; the parent harvests the result from the verdict's
    conformance to refill the cache).  ``trace_id`` is the parent's
    ambient trace (or ``None``): the worker re-enters it, so a traced
    serve-daemon submit keeps one trace id across process boundaries.

    Returns ``(chunk_index, verdicts, records)``.  With telemetry on,
    the worker runs under its own buffered :class:`Telemetry` and
    ``records`` is its drained record stream — per-test
    ``campaign.test`` events whose fields depend only on test identity
    and verdict (never on sharding or timing), per-test wall spans,
    and the worker's metric snapshot.  The parent ingests the stream,
    so the merged event content is the same for any ``jobs`` value,
    up to arrival order.
    """
    chunk_index, tests, config, allowed_sets, telemetry_on, trace_id = \
        payload
    if not telemetry_on:
        verdicts = [check_test(test, config, allowed=allowed)
                    for test, allowed in zip(tests, allowed_sets)]
        return chunk_index, verdicts, []

    worker = Telemetry(sinks=[MemorySink()])
    verdicts = []
    chunk_started = time.perf_counter()
    with _use(worker), use_trace(trace_id):
        for offset, (test, allowed) in enumerate(zip(tests, allowed_sets)):
            started = time.perf_counter()
            verdict = check_test(test, config, allowed=allowed)
            verdicts.append(verdict)
            worker.record_span(
                "campaign.test", started, time.perf_counter(),
                attrs={"test": test.name, "index": chunk_index + offset,
                       "ok": verdict.ok})
            worker.event(
                "campaign.test", index=chunk_index + offset,
                test=test.name, ok=verdict.ok,
                outcomes=len(verdict.run.outcomes),
                imprecise=verdict.run.imprecise_exceptions,
                precise=verdict.run.precise_exceptions,
                cached=verdict.enum_stats is None)
    with use_trace(trace_id):
        worker.record_span(
            "campaign.chunk", chunk_started, time.perf_counter(),
            attrs={"chunk": chunk_index, "tests": len(tests)})
    records = worker.drain_records()
    # Each shard gets its own wall lane in the merged stream, so the
    # parent's Chrome trace keeps every worker's spans properly
    # nested on a thread of their own (lane 0 stays the parent's).
    for record in records:
        if record.get("track") == WALL:
            record["lane"] = 1 + chunk_index
    return chunk_index, verdicts, records


def _chunk_size(n_tests: int, jobs: int) -> int:
    """~4 chunks per worker balances load against dispatch overhead."""
    return max(1, -(-n_tests // max(1, jobs * 4)))


# ----------------------------------------------------------------------
# Campaign driver
# ----------------------------------------------------------------------
def run_campaign(tests: Sequence[LitmusTest],
                 config: Optional[RunConfig] = None,
                 jobs: int = 1,
                 cache: Optional[Union[AllowedSetCache, str, Path]] = None,
                 chunk_size: Optional[int] = None,
                 store=None,
                 incremental: bool = False) -> SuiteReport:
    """Run the §6.3 campaign over ``tests``, sharded across ``jobs``
    workers, and merge the per-shard verdicts into one
    :class:`~repro.litmus.harness.SuiteReport` in suite order.

    ``store`` (a :class:`repro.store.VerdictStore` or a directory
    path) persists full verdict records keyed by input fingerprint;
    with ``incremental=True`` a test whose fingerprint — test digest x
    model x verdict-relevant config — is already stored is *replayed*
    from its record instead of re-run, so a no-op re-campaign
    short-circuits to ~100% store hits.  The store also serves allowed
    sets to cache-miss tests (any stored record for the digest, even
    under a different seed count, skips re-enumeration).

    Guarantee: for fixed ``tests`` and ``config``, the per-test
    outcome sets (and hence every verdict) are identical for any
    ``jobs``/``chunk_size`` — seeds depend only on test identity —
    and a replayed verdict is judged from its stored outcomes by the
    same conformance check, so incremental mode preserves verdicts
    bit-identically.
    """
    config = config or RunConfig()
    tests = list(tests)
    if cache is None:
        cache = _PROCESS_CACHE
    elif not isinstance(cache, AllowedSetCache):
        cache = AllowedSetCache(cache)
    if store is not None:
        from ..store import VerdictRecord, VerdictStore, verdict_fingerprint
        if not isinstance(store, VerdictStore):
            store = VerdictStore(store)

    tel = _telemetry()
    started = time.perf_counter()
    reference_name = ENGINE_REFERENCE_MODEL[config.model]
    digests = [canonical_test_digest(test, reference_name)
               for test in tests]

    # Incremental replay: serve whole verdicts for fingerprints whose
    # inputs did not change since the stored run.
    fingerprints: List[Optional[str]] = [None] * len(tests)
    replayed: Dict[int, TestVerdict] = {}
    if store is not None:
        fingerprints = [verdict_fingerprint(digest, config,
                                            name=test.name)
                        for digest, test in zip(digests, tests)]
        if incremental:
            for i, fingerprint in enumerate(fingerprints):
                record = store.get(fingerprint)
                if record is not None and record.has_runs:
                    replay_started = time.perf_counter()
                    verdict = record.to_verdict(tests[i])
                    verdict.wall_time = (time.perf_counter()
                                         - replay_started)
                    replayed[i] = verdict
    store_hits = len(replayed)
    store_misses = len(tests) - store_hits
    pending = [i for i in range(len(tests)) if i not in replayed]
    pending_tests = [tests[i] for i in pending]

    # Allowed-set lookups for the tests that will actually run.  The
    # cache's own hit/miss counters are the single source of cache
    # accounting (report block, summary line, and obs counters all
    # read the same deltas); store-served allowed sets land in the
    # report's ``store`` block instead.
    hits_before, misses_before = cache.hits, cache.misses
    allowed_served = 0
    allowed_sets: List[Optional[Set[Outcome]]] = []
    for i in pending:
        found = cache.get(digests[i])
        if found is None and store is not None:
            found = store.get_allowed(digests[i])
            if found is not None:
                allowed_served += 1
                cache.put(digests[i], found)
        allowed_sets.append(found)
    hits = cache.hits - hits_before
    misses = cache.misses - misses_before
    log.info("campaign start: %d tests model=%s jobs=%d "
             "(allowed-set cache: %d hits, %d to enumerate%s)",
             len(tests), config.model, jobs, hits + allowed_served,
             len(pending) - hits - allowed_served,
             f"; store: {store_hits} verdicts replayed"
             if store is not None else "")

    size = chunk_size or _chunk_size(len(pending_tests), jobs)
    # Propagate (never mint) the ambient trace: a traced caller — the
    # serve daemon's batch, a profiled CLI run — sees its id on every
    # worker record; untraced campaigns stay byte-identical.
    context = current_trace() if tel.enabled else None
    trace_id = context.trace_id if context is not None else None
    payloads = [
        (start, pending_tests[start:start + size], config,
         allowed_sets[start:start + size], tel.enabled, trace_id)
        for start in range(0, len(pending_tests), size)
    ]

    merged: Dict[int, List[TestVerdict]] = {}
    done = 0

    def note_progress(index: int, chunk: List[TestVerdict],
                      records) -> None:
        nonlocal done
        done += len(chunk)
        failures = sum(1 for v in chunk if not v.ok)
        log.info("campaign progress: %d/%d tests (%d chunk failures, "
                 "%.1fs elapsed)", done, len(pending_tests), failures,
                 time.perf_counter() - started)
        if tel.enabled:
            tel.ingest(records)
            # Deterministic fields only (no wall times, no done
            # counts): for a fixed chunk partition the progress
            # stream's content matches the serial run's for any jobs
            # value, up to arrival order.  (The per-test
            # ``campaign.test`` events from the workers match for
            # *any* jobs/chunk_size.)
            tel.event("campaign.progress", chunk=index,
                      tests=len(chunk), failures=failures)

    if jobs <= 1 or len(pending_tests) <= 1:
        for payload in payloads:
            index, verdicts, records = _check_chunk(payload)
            merged[index] = verdicts
            note_progress(index, verdicts, records)
    else:
        # ``reset_current`` as initializer: forked workers must not
        # inherit the parent's ambient telemetry (open sinks); each
        # shard builds its own buffered context in ``_check_chunk``.
        with multiprocessing.Pool(processes=jobs,
                                  initializer=reset_current) as pool:
            for index, verdicts, records in pool.imap_unordered(
                    _check_chunk, payloads):
                merged[index] = verdicts
                note_progress(index, verdicts, records)

    computed: List[TestVerdict] = []
    for start in sorted(merged):
        computed.extend(merged[start])
    by_position: Dict[int, TestVerdict] = dict(replayed)
    by_position.update(zip(pending, computed))

    report = SuiteReport(model=config.model,
                         injected=config.inject_faults,
                         jobs=max(1, jobs))
    report.verdicts.extend(by_position[i] for i in range(len(tests)))

    # Harvest worker-enumerated allowed sets back into the cache, and
    # full verdict records into the store.
    for i, cached, verdict in zip(pending, allowed_sets, computed):
        if cached is None:
            cache.put(digests[i], verdict.conformance.allowed)
    cache.save()
    if store is not None:
        for i, verdict in zip(pending, computed):
            store.put(VerdictRecord.from_verdict(
                verdict, config, fingerprints[i], digests[i]))
        store.save()

    report.wall_time = time.perf_counter() - started
    report.cache_hits = hits
    report.cache_misses = misses
    report.incremental = bool(incremental and store is not None)
    if store is not None:
        report.store = {
            "path": str(store.root),
            "records": len(store),
            "incremental": bool(incremental),
            "hits": store_hits,
            "misses": store_misses,
            "hit_rate": (round(store_hits / len(tests), 4)
                         if tests else 0.0),
            "allowed_served": allowed_served,
        }
    if tel.enabled:
        tel.record_span("campaign.run", started,
                        time.perf_counter(),
                        attrs={"tests": len(tests),
                               "jobs": max(1, jobs),
                               "model": str(config.model)})
        tel.counter("campaign.tests").inc(len(tests))
        tel.counter("campaign.failures").inc(len(report.failures))
        tel.counter("campaign.cache_hits").inc(hits)
        tel.counter("campaign.cache_misses").inc(misses)
        if store is not None:
            tel.counter("campaign.store_hits").inc(store_hits)
            tel.counter("campaign.store_misses").inc(store_misses)
        report.telemetry = tel.summary()
    log.info("campaign done: %d tests, %d failures, %.1fs "
             "(imprecise=%d precise=%d)", report.tests,
             len(report.failures), report.wall_time,
             report.total_imprecise_exceptions,
             report.total_precise_exceptions)
    if store is not None:
        log.info("campaign store: %d verdicts replayed, %d computed "
                 "(%d records in %s)", store_hits, store_misses,
                 len(store), store.root)
    totals = report.enumerator_totals()
    log.info("campaign enumerator: %d enumerated / %d cache-served, "
             "%d rf leaves (%d partial prunes, %d co prunes, "
             "%d outcome skips), %d candidates examined, "
             "%d relation-cache hits, %.3fs enumeration",
             totals["tests_enumerated"], totals["tests_cached"],
             totals["rf_assignments"], totals["rf_partial_prunes"],
             totals["addr_co_prunes"], totals["known_outcome_skips"],
             totals["candidates_examined"],
             totals["relation_cache_hits"], totals["wall_time_s"])
    if config.explore:
        xt = report.explorer_totals()
        log.info("campaign explorer: %d tests explored (%s), "
                 "%d mismatches, %d states / %d transitions / "
                 "%d interleavings (%d sleep blocks, %d races), "
                 "%.3fs exploration",
                 xt["tests_explored"], config.explore,
                 xt["mismatches"], xt["states_visited"],
                 xt["transitions_executed"], xt["interleavings"],
                 xt["sleep_set_blocks"], xt["races_detected"],
                 xt["wall_time_s"])
    if config.prefilter:
        st = report.static_totals()
        log.info("campaign static pre-filter: %d classified "
                 "(%d sc-equivalent, %d relaxable, %d unknown), "
                 "%d short-circuited to SC, %d cache-served, %.3fs",
                 st["tests_classified"], st["sc_equivalent"],
                 st["relaxable"], st["unknown"],
                 st["short_circuited"], st["tests_skipped"],
                 st["wall_time_s"])
    if config.taint:
        tt = report.taint_totals()
        log.info("campaign taint: %d analyzed "
                 "(%d leak-hazard, %d leak-free, %d unknown), "
                 "%d witness flows, %.3fs",
                 tt["tests_analyzed"], tt["leak_hazard"],
                 tt["leak_free"], tt["unknown"], tt["flows"],
                 tt["wall_time_s"])
    return report
