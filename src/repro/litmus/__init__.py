"""Litmus engine: DSL, library, generators, runner, and harness."""

from .dsl import LitmusOutcome, LitmusTest
from .generator import generate_all, tests_by_category
from .harness import SuiteReport, TestVerdict, allowed_set, check_suite, check_test
from .library import all_library_tests
from .multicore_tests import all_multicore_tests
from .parser import LitmusParseError, load_litmus_directory, parse_litmus
from .runner import RunConfig, TestRun, run_suite, run_test

__all__ = [
    "LitmusOutcome", "LitmusTest",
    "generate_all", "tests_by_category",
    "SuiteReport", "TestVerdict", "allowed_set", "check_suite", "check_test",
    "all_library_tests", "all_multicore_tests",
    "LitmusParseError", "load_litmus_directory", "parse_litmus",
    "RunConfig", "TestRun", "run_suite", "run_test",
]
