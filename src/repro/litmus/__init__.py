"""Litmus engine: DSL, library, generators, runner, harness, and the
parallel campaign engine."""

from .campaign import AllowedSetCache, canonical_test_digest, run_campaign
from .dsl import LitmusOutcome, LitmusTest
from .generator import (dedupe_tests, generate_all, program_digest,
                        tests_by_category)
from .harness import SuiteReport, TestVerdict, allowed_set, check_suite, check_test
from .library import all_library_tests
from .multicore_tests import all_multicore_tests
from .parser import LitmusParseError, load_litmus_directory, parse_litmus
from .runner import (DEFAULT_SEEDS, RunConfig, TestRun, derive_seed,
                     derive_seeds, run_suite, run_test)

__all__ = [
    "AllowedSetCache", "canonical_test_digest", "run_campaign",
    "LitmusOutcome", "LitmusTest",
    "dedupe_tests", "generate_all", "program_digest",
    "tests_by_category",
    "SuiteReport", "TestVerdict", "allowed_set", "check_suite", "check_test",
    "all_library_tests", "all_multicore_tests",
    "LitmusParseError", "load_litmus_directory", "parse_litmus",
    "DEFAULT_SEEDS", "RunConfig", "TestRun", "derive_seed", "derive_seeds",
    "run_suite", "run_test",
]
