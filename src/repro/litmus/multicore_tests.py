"""Three- and four-core litmus tests.

The paper's FPGA prototype is limited to two cores; the simulator is
not, so these classic multi-core shapes extend the campaign beyond the
paper's coverage (an "extension" in EXPERIMENTS.md terms): write-to-
read causality (WRC), independent reads of independent writes (IRIW),
and ISA2.
"""

from __future__ import annotations

from typing import List

from ..memmodel.events import FenceKind
from .dsl import LitmusOutcome, LitmusTest
from .library import CAT_BARRIER, CAT_DEPS, CAT_RFE

LL = FenceKind.LOAD_LOAD
SS = FenceKind.STORE_STORE


def wrc() -> LitmusTest:
    """WRC: writes must appear causally ordered through a middleman."""
    return LitmusTest(
        name="WRC",
        category=CAT_RFE,
        threads=[
            [("W", "x", 1)],
            [("R", "x", "r0"), ("F", FenceKind.FULL), ("W", "y", 1)],
            [("R", "y", "r1"), ("F", FenceKind.FULL), ("R", "x", "r2")],
        ],
        spotlight=LitmusOutcome.of(r0=1, r1=1, r2=0),
    )


def wrc_addr_dep() -> LitmusTest:
    """WRC with dependencies instead of fences."""
    return LitmusTest(
        name="WRC+addrs",
        category=CAT_DEPS,
        threads=[
            [("W", "x", 1)],
            [("R", "x", "r0"), ("Wdata", "y", 1, "r0")],
            [("R", "y", "r1"), ("Raddr", "x", "r2", "r1")],
        ],
        spotlight=LitmusOutcome.of(r0=1, r1=1, r2=0),
    )


def iriw() -> LitmusTest:
    """IRIW: two readers must agree on the order of independent
    writes (with full fences between the reads)."""
    return LitmusTest(
        name="IRIW+fences",
        category=CAT_BARRIER,
        threads=[
            [("W", "x", 1)],
            [("W", "y", 1)],
            [("R", "x", "r0"), ("F", FenceKind.FULL), ("R", "y", "r1")],
            [("R", "y", "r2"), ("F", FenceKind.FULL), ("R", "x", "r3")],
        ],
        spotlight=LitmusOutcome.of(r0=1, r1=0, r2=1, r3=0),
    )


def isa2() -> LitmusTest:
    """ISA2: transitive message passing across three cores."""
    return LitmusTest(
        name="ISA2",
        category=CAT_RFE,
        threads=[
            [("W", "z", 1), ("F", SS), ("W", "x", 1)],
            [("R", "x", "r0"), ("F", FenceKind.FULL), ("W", "y", 1)],
            [("R", "y", "r1"), ("F", LL), ("R", "z", "r2")],
        ],
        spotlight=LitmusOutcome.of(r0=1, r1=1, r2=0),
    )


def three_core_mp_chain() -> LitmusTest:
    """MP chained through a third observer core."""
    return LitmusTest(
        name="MP-chain3",
        category=CAT_RFE,
        threads=[
            [("W", "y", 1), ("F", SS), ("W", "x", 1)],
            [("R", "x", "r0"), ("F", FenceKind.FULL), ("W", "z", 1)],
            [("R", "z", "r1"), ("F", LL), ("R", "y", "r2")],
        ],
        spotlight=LitmusOutcome.of(r0=1, r1=1, r2=0),
    )


def all_multicore_tests() -> List[LitmusTest]:
    return [wrc(), wrc_addr_dep(), iriw(), isa2(), three_core_mp_chain()]
