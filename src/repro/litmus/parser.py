"""Parser for a practical subset of the ``.litmus`` text format.

The RISC-V litmus suite the paper runs (§6.3) distributes tests as
``.litmus`` files.  This parser accepts the structural core of that
format so users can feed hand-written or suite-derived tests straight
into the harness:

.. code-block:: none

    RISCV MP
    {
    0:x5=1; x=0; y=0;
    }
     P0          | P1          ;
     sw x5,0(x)  | lw x6,0(y)  ;
     fence w,w   | fence r,r   ;
     sw x5,0(y)  | lw x7,0(x)  ;

    exists (1:x6=1 /\\ 1:x7=0)

Supported instructions: ``sw``/``sd`` (store register), ``li``
(immediate), ``lw``/``ld`` (load), ``fence`` with ``rw,rw`` / ``w,w``
/ ``r,r`` / ``w,r`` / ``r,w`` orders, and ``amoswap``.  Registers are
RISC-V ``x`` names; symbolic locations are bare identifiers.  The
``exists`` clause becomes the test's spotlight outcome.

Dependency ops use the standard litmus *xor idioms* (a syntactic
dependency through a register that always computes zero / a branch
that always falls through — semantically inert, architecturally
order-inducing):

=========  ==========================================================
DSL op     ``.litmus`` encoding
=========  ==========================================================
``Raddr``  ``xor x30,xd,xd`` then ``lw xr,0(loc,x30)``
``Waddr``  ``xor x30,xd,xd`` then ``sw xv,0(loc,x30)``
``Wdata``  ``xor x30,xd,xd``; ``addi x30,x30,<val>``;
           ``sw x30,0(loc)``
``Rctrl``  ``beq xd,xd,0`` then ``lw xr,0(loc)``
``Wctrl``  ``beq xd,xd,0`` then ``sw xv,0(loc)``
=========  ==========================================================

where ``xd`` is the producing load's register.  A dangling idiom
prefix (an ``xor``/``beq`` whose dependency is never consumed by a
memory access) is a parse error, never silently dropped.

:func:`render_litmus` is the inverse writer covering the full op
vocabulary (``W``/``R``/``F``/``A`` plus the dependency idioms
above).  For tests whose observation registers follow the parser's
``{tid}:x{N}`` namespace (everything :mod:`repro.litmus.randgen`
emits), render → re-parse is an exact round trip: identical threads,
registers, dependencies, and spotlight.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..memmodel.events import FenceKind
from .dsl import LitmusOutcome, LitmusTest
from .library import CAT_BARRIER

_FENCE_KINDS = {
    "rw,rw": FenceKind.FULL,
    "w,w": FenceKind.STORE_STORE,
    "r,r": FenceKind.LOAD_LOAD,
    "w,r": FenceKind.STORE_LOAD,
    "r,w": FenceKind.LOAD_STORE,
}


class LitmusParseError(ValueError):
    pass


class LitmusRenderError(ValueError):
    """The test uses ops the ``.litmus`` text subset cannot encode."""


def parse_litmus(text: str, category: str = CAT_BARRIER) -> LitmusTest:
    """Parse one ``.litmus``-style test into a :class:`LitmusTest`."""
    lines = [ln.rstrip() for ln in text.strip().splitlines()]
    if not lines:
        raise LitmusParseError("empty litmus text")

    header = lines[0].split()
    if len(header) < 2:
        raise LitmusParseError(f"bad header line: {lines[0]!r}")
    name = header[1]

    init_block, body_start = _parse_init(lines)
    thread_rows, cond_line = _parse_body(lines, body_start)
    threads = _parse_threads(thread_rows, init_block)
    spotlight = _parse_exists(cond_line) if cond_line else None

    test = LitmusTest(name=name, category=category, threads=threads,
                      spotlight=spotlight, init=init_block or None)
    return test


# ----------------------------------------------------------------------
def _parse_init(lines: List[str]) -> Tuple[Dict, int]:
    """Parse the ``{ ... }`` init block; returns (assignments, index
    of the first body line).

    Each ``reg=value`` / ``loc=value`` statement may appear at most
    once: a duplicate key raises :class:`LitmusParseError` naming both
    lines instead of silently letting the last assignment win (line
    numbers are 1-based over the test text).
    """
    init: Dict = {}
    first_line: Dict = {}
    idx = 1
    if idx >= len(lines) or not lines[idx].strip().startswith("{"):
        return init, idx
    # Collect (statement, line number) pairs until the closing brace.
    stmts: List[Tuple[str, int]] = []
    while idx < len(lines):
        line = lines[idx].strip()
        lineno = idx + 1
        for stmt in line.strip("{}").split(";"):
            stmt = stmt.strip()
            if stmt:
                stmts.append((stmt, lineno))
        idx += 1
        if line.endswith("}"):
            break
    for stmt, lineno in stmts:
        match = re.match(r"^(?:(\d+):)?([A-Za-z_]\w*)\s*=\s*(-?\d+)$",
                         stmt)
        if not match:
            raise LitmusParseError(
                f"line {lineno}: bad init statement: {stmt!r}")
        thread, target, value = match.groups()
        key = (int(thread), target) if thread is not None else target
        if key in init:
            label = f"{thread}:{target}" if thread is not None else target
            raise LitmusParseError(
                f"line {lineno}: duplicate initialiser for {label} "
                f"(first defined at line {first_line[key]})")
        init[key] = int(value)
        first_line[key] = lineno
    return init, idx


def _parse_body(lines: List[str],
                start: int) -> Tuple[List[List[str]], Optional[str]]:
    rows: List[List[str]] = []
    cond = None
    for line in lines[start:]:
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith(("exists", "forall", "~exists")):
            cond = stripped
            continue
        if "|" in stripped or stripped.endswith(";"):
            cells = [c.strip() for c in stripped.rstrip(";").split("|")]
            rows.append(cells)
    if not rows:
        raise LitmusParseError("no thread body found")
    return rows, cond


def _parse_threads(rows: List[List[str]], init: Dict) -> List[List[tuple]]:
    headers = rows[0]
    n_threads = len(headers)
    # Per-thread register state for immediates: reg -> value.
    reg_values: List[Dict[str, int]] = [dict() for _ in range(n_threads)]
    for key, value in init.items():
        if isinstance(key, tuple):
            tid, reg = key
            if tid < n_threads:
                reg_values[tid][reg] = value
    threads: List[List[tuple]] = [[] for _ in range(n_threads)]
    reg_counter = [0] * n_threads
    # Per-thread in-flight dependency idiom (see module docstring):
    # ("addr", dep, scratch) after ``xor``, ("data", dep, scratch,
    # value) after ``addi``, ("ctrl", dep) after ``beq``.
    pending: List[Optional[tuple]] = [None] * n_threads

    for row in rows[1:]:
        for tid, cell in enumerate(row):
            if tid >= n_threads or not cell:
                continue
            _parse_instruction(cell, tid, threads, reg_values,
                               reg_counter, pending)
    for tid, dangling in enumerate(pending):
        if dangling is not None:
            raise LitmusParseError(
                f"thread {tid}: dangling {dangling[0]}-dependency "
                f"idiom on {dangling[1]!r} never consumed by a memory "
                f"access")
    return threads


def _parse_instruction(cell: str, tid: int, threads, reg_values,
                       reg_counter, pending) -> None:
    cell = cell.strip()
    if not cell:
        return
    mnemonic, _, rest = cell.partition(" ")
    rest = rest.replace(" ", "")
    if mnemonic == "li":
        reg, value = rest.split(",")
        reg_values[tid][reg] = int(value)
    elif mnemonic == "xor":
        match = re.match(r"^(\w+),(\w+),(\w+)$", rest)
        if not match or match.group(2) != match.group(3):
            raise LitmusParseError(
                f"bad xor idiom: {cell!r} (expected xor xs,xd,xd)")
        if pending[tid] is not None:
            raise LitmusParseError(
                f"thread {tid}: dependency idiom opened twice "
                f"({cell!r} while a {pending[tid][0]} idiom is open)")
        scratch, dep = match.group(1), match.group(2)
        pending[tid] = ("addr", f"{tid}:{dep}", scratch)
    elif mnemonic == "addi":
        match = re.match(r"^(\w+),(\w+),(-?\d+)$", rest)
        if not match or match.group(1) != match.group(2):
            raise LitmusParseError(
                f"bad addi idiom: {cell!r} (expected addi xs,xs,v)")
        state = pending[tid]
        if state is None or state[0] != "addr" \
                or state[2] != match.group(1):
            raise LitmusParseError(
                f"addi outside an xor data-dependency idiom: {cell!r}")
        pending[tid] = ("data", state[1], state[2],
                        int(match.group(3)))
    elif mnemonic == "beq":
        match = re.match(r"^(\w+),(\w+),0$", rest)
        if not match or match.group(1) != match.group(2):
            raise LitmusParseError(
                f"bad beq idiom: {cell!r} (expected beq xd,xd,0)")
        if pending[tid] is not None:
            raise LitmusParseError(
                f"thread {tid}: dependency idiom opened twice "
                f"({cell!r} while a {pending[tid][0]} idiom is open)")
        pending[tid] = ("ctrl", f"{tid}:{match.group(1)}")
    elif mnemonic in ("sw", "sd"):
        state, pending[tid] = pending[tid], None
        match = re.match(r"^(\w+),0\((\w+)(?:,(\w+))?\)$", rest)
        if not match:
            raise LitmusParseError(f"bad store operand: {cell!r}")
        src, loc, offset = match.groups()
        if offset is not None:
            if state is None or state[0] != "addr" or state[2] != offset:
                raise LitmusParseError(
                    f"store offset register {offset!r} has no "
                    f"preceding xor idiom: {cell!r}")
            value = reg_values[tid].get(src, 1)
            threads[tid].append(("Waddr", loc, value, state[1]))
        elif state is not None and state[0] == "data":
            if src != state[2]:
                raise LitmusParseError(
                    f"data-dependency idiom computes {state[2]!r} but "
                    f"the store writes {src!r}: {cell!r}")
            threads[tid].append(("Wdata", loc, state[3], state[1]))
        elif state is not None and state[0] == "ctrl":
            value = reg_values[tid].get(src, 1)
            threads[tid].append(("Wctrl", loc, value, state[1]))
        elif state is not None:
            raise LitmusParseError(
                f"plain store inside a {state[0]}-dependency idiom: "
                f"{cell!r}")
        else:
            value = reg_values[tid].get(src, 1)
            threads[tid].append(("W", loc, value))
    elif mnemonic in ("lw", "ld"):
        state, pending[tid] = pending[tid], None
        match = re.match(r"^(\w+),0\((\w+)(?:,(\w+))?\)$", rest)
        if not match:
            raise LitmusParseError(f"bad load operand: {cell!r}")
        dst, loc, offset = match.groups()
        reg_name = f"{tid}:{dst}"
        if offset is not None:
            if state is None or state[0] != "addr" or state[2] != offset:
                raise LitmusParseError(
                    f"load offset register {offset!r} has no "
                    f"preceding xor idiom: {cell!r}")
            threads[tid].append(("Raddr", loc, reg_name, state[1]))
        elif state is not None and state[0] == "ctrl":
            threads[tid].append(("Rctrl", loc, reg_name, state[1]))
        elif state is not None:
            raise LitmusParseError(
                f"plain load inside a {state[0]}-dependency idiom: "
                f"{cell!r}")
        else:
            threads[tid].append(("R", loc, reg_name))
        reg_counter[tid] += 1
    elif mnemonic == "fence":
        if pending[tid] is not None:
            raise LitmusParseError(
                f"thread {tid}: fence inside a {pending[tid][0]}-"
                f"dependency idiom (dependencies are immediate)")
        kind = _FENCE_KINDS.get(rest)
        if kind is None:
            raise LitmusParseError(f"unsupported fence order: {cell!r}")
        threads[tid].append(("F", kind) if kind is not FenceKind.FULL
                            else ("F",))
    elif mnemonic.startswith("amoswap"):
        if pending[tid] is not None:
            raise LitmusParseError(
                f"thread {tid}: amoswap inside a {pending[tid][0]}-"
                f"dependency idiom (no dependency-bearing atomics in "
                f"the DSL)")
        match = re.match(r"^(\w+),(\w+),\((\w+)\)$", rest)
        if not match:
            raise LitmusParseError(f"bad amoswap operand: {cell!r}")
        dst, src, loc = match.groups()
        value = reg_values[tid].get(src, 1)
        threads[tid].append(("A", loc, value, f"{tid}:{dst}"))
    else:
        raise LitmusParseError(f"unsupported instruction: {cell!r}")


def _parse_exists(line: str) -> Optional[LitmusOutcome]:
    match = re.search(r"\((.*)\)", line)
    if not match:
        return None
    values: Dict[str, int] = {}
    for clause in re.split(r"/\\|∧", match.group(1)):
        clause = clause.strip()
        m = re.match(r"^(\d+):(\w+)\s*=\s*(-?\d+)$", clause)
        if not m:
            raise LitmusParseError(f"bad exists clause: {clause!r}")
        tid, reg, value = m.groups()
        values[f"{tid}:{reg}"] = int(value)
    return LitmusOutcome(tuple(sorted(values.items())))


# ----------------------------------------------------------------------
_FENCE_ORDERS = {kind: order for order, kind in _FENCE_KINDS.items()}


def _value_registers(test: LitmusTest) -> List[Dict[int, str]]:
    """Per-thread map of store value -> preload register name.

    Registers are allocated from ``x5`` upward, skipping any name the
    thread already uses as a load/amoswap destination and the ``x30``
    idiom scratch register, so preloads never shadow an observation
    register.  Value-carrying store kinds needing a preload are ``W``,
    ``Waddr``, ``Wctrl``, and ``A`` — ``Wdata`` encodes its value in
    the ``addi`` of its idiom instead.
    """
    maps: List[Dict[int, str]] = []
    for tid, ops in enumerate(test.threads):
        used = {_SCRATCH}
        for op in ops:
            if op[0] in ("R", "Raddr", "Rctrl"):
                used.add(_reg_suffix(op[2], tid))
            elif op[0] == "A":
                used.add(_reg_suffix(op[3], tid))
        values: Dict[int, str] = {}
        next_idx = 5
        for op in ops:
            if op[0] in ("W", "Waddr", "Wctrl", "A") \
                    and op[2] not in values:
                while f"x{next_idx}" in used:
                    next_idx += 1
                values[op[2]] = f"x{next_idx}"
                next_idx += 1
        maps.append(values)
    return maps


def _reg_suffix(reg: str, tid: int) -> str:
    """Strip a ``{tid}:`` register prefix, validating it names
    ``tid``."""
    if ":" not in reg:
        return reg
    prefix, _, suffix = reg.partition(":")
    if prefix != str(tid):
        raise LitmusRenderError(
            f"register {reg!r} used on thread {tid} names another "
            f"thread; .litmus registers are thread-local")
    return suffix


#: The dependency-idiom scratch register (see the module docstring);
#: excluded from preload allocation so idioms never clobber values.
_SCRATCH = "x30"


def _render_op(op: tuple, tid: int, values: Dict[int, str]) -> List[str]:
    """The ``.litmus`` instruction(s) for one DSL op — dependency ops
    expand to their multi-instruction xor/beq idioms."""
    kind = op[0]
    if kind == "W":
        return [f"sw {values[op[2]]},0({op[1]})"]
    if kind == "R":
        return [f"lw {_reg_suffix(op[2], tid)},0({op[1]})"]
    if kind == "F":
        fence = op[1] if len(op) > 1 else FenceKind.FULL
        order = _FENCE_ORDERS.get(fence)
        if order is None:
            raise LitmusRenderError(f"unsupported fence kind: {fence!r}")
        return [f"fence {order}"]
    if kind == "A":
        dst = _reg_suffix(op[3], tid)
        return [f"amoswap {dst},{values[op[2]]},({op[1]})"]
    if kind in ("Raddr", "Waddr", "Wdata", "Rctrl", "Wctrl"):
        dep = _reg_suffix(op[3], tid)
        if kind == "Raddr":
            return [f"xor {_SCRATCH},{dep},{dep}",
                    f"lw {_reg_suffix(op[2], tid)},"
                    f"0({op[1]},{_SCRATCH})"]
        if kind == "Waddr":
            return [f"xor {_SCRATCH},{dep},{dep}",
                    f"sw {values[op[2]]},0({op[1]},{_SCRATCH})"]
        if kind == "Wdata":
            return [f"xor {_SCRATCH},{dep},{dep}",
                    f"addi {_SCRATCH},{_SCRATCH},{op[2]}",
                    f"sw {_SCRATCH},0({op[1]})"]
        if kind == "Rctrl":
            return [f"beq {dep},{dep},0",
                    f"lw {_reg_suffix(op[2], tid)},0({op[1]})"]
        return [f"beq {dep},{dep},0",
                f"sw {values[op[2]]},0({op[1]})"]
    raise LitmusRenderError(
        f"op {op!r} (thread {tid}) has no .litmus encoding")


def _render_exists(test: LitmusTest) -> str:
    clauses = []
    for reg, value in test.spotlight.values:
        if ":" in reg:
            label = reg
        else:
            readers = [tid for tid, ops in enumerate(test.threads)
                       if any((op[0] in ("R", "Raddr", "Rctrl")
                               and op[2] == reg)
                              or (op[0] == "A" and op[3] == reg)
                              for op in ops)]
            if len(readers) != 1:
                raise LitmusRenderError(
                    f"spotlight register {reg!r} read by threads "
                    f"{readers}; cannot pick a {{tid}}: prefix")
            label = f"{readers[0]}:{reg}"
        clauses.append(f"{label}={value}")
    return "exists (" + " /\\ ".join(clauses) + ")"


def render_litmus(test: LitmusTest) -> str:
    """Render a :class:`LitmusTest` as ``.litmus`` text.

    The output parses back via :func:`parse_litmus`; for tests using
    the ``{tid}:x{N}`` register namespace the reparse reproduces the
    exact threads, dependencies, and spotlight.  Dependency ops
    expand to their xor/beq idioms (module docstring).
    """
    values = _value_registers(test)
    cells: List[List[str]] = []
    for tid, ops in enumerate(test.threads):
        col: List[str] = []
        for op in ops:
            col.extend(_render_op(op, tid, values[tid]))
        cells.append(col)

    init_stmts = []
    for tid, value_map in enumerate(values):
        for value, reg in sorted(value_map.items(),
                                 key=lambda item: item[1]):
            init_stmts.append(f"{tid}:{reg}={value}")
    if test.init:
        for key, value in sorted(test.init.items(), key=str):
            if not isinstance(key, tuple):
                init_stmts.append(f"{key}={value}")

    depth = max(len(col) for col in cells) if cells else 0
    widths = [max([len(f"P{tid}")] + [len(c) for c in col])
              for tid, col in enumerate(cells)]
    rows = [" | ".join(f"P{tid}".ljust(widths[tid])
                       for tid in range(len(cells))) + " ;"]
    for step in range(depth):
        row = " | ".join(
            (col[step] if step < len(col) else "").ljust(widths[tid])
            for tid, col in enumerate(cells))
        rows.append(row + " ;")

    lines = [f"RISCV {test.name}"]
    if init_stmts:
        lines.append("{")
        lines.append("; ".join(init_stmts) + ";")
        lines.append("}")
    lines.extend(" " + row for row in rows)
    if test.spotlight is not None:
        lines.append("")
        lines.append(_render_exists(test))
    return "\n".join(lines) + "\n"


def load_litmus_directory(directory, category: str = CAT_BARRIER):
    """Parse every ``*.litmus`` file in ``directory``.

    Returns the parsed :class:`LitmusTest` objects, sorted by name.
    The repository ships a starter set under ``litmus_files/``.
    """
    from pathlib import Path

    tests = []
    for path in sorted(Path(directory).glob("*.litmus")):
        tests.append(parse_litmus(path.read_text(), category=category))
    return tests
