"""Systematic litmus-test families per Table 6's ordering rules.

The paper runs the 1600 two-core tests of the RISC-V suite, whose
coverage Table 6 buckets into eight ordering-rule categories.  This
generator produces our families the same way the suite's diy-style
generators do: base communication shapes × fence placements ×
dependency flavours × value assignments.

Counts scale with ``variants_per_family``; the Table 6 bench reports
the per-category totals alongside the paper's.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from typing import Dict, List, Sequence, Set

from ..memmodel.events import FenceKind
from .dsl import LitmusTest
from .library import (
    CAT_BARRIER,
    CAT_CO,
    CAT_DEPS,
    CAT_FR,
    CAT_PO_LOC,
    CAT_PPO,
    CAT_RFE,
    CAT_RFI,
)

_FENCES = {
    "none": None,
    "ss": FenceKind.STORE_STORE,
    "ll": FenceKind.LOAD_LOAD,
    "sl": FenceKind.STORE_LOAD,
    "ls": FenceKind.LOAD_STORE,
    "full": FenceKind.FULL,
}


def _fence_ops(tag: str) -> List[tuple]:
    kind = _FENCES[tag]
    if kind is None:
        return []
    if kind is FenceKind.FULL:
        return [("F",)]
    return [("F", kind)]


def _dep_read(kind: str, loc: str, reg: str, dep: str) -> List[tuple]:
    if kind == "addr":
        return [("Raddr", loc, reg, dep)]
    if kind == "ctrl":
        return [("Rctrl", loc, reg, dep)]
    return [("R", loc, reg)]


def _dep_write(kind: str, loc: str, val: int, dep: str) -> List[tuple]:
    if kind == "addr":
        return [("Waddr", loc, val, dep)]
    if kind == "data":
        return [("Wdata", loc, val, dep)]
    if kind == "ctrl":
        return [("Wctrl", loc, val, dep)]
    return [("W", loc, val)]


# ----------------------------------------------------------------------
# Families
# ----------------------------------------------------------------------
def generate_dependency_tests(values: Sequence[int] = (1, 2, 3)) -> List[LitmusTest]:
    """MP/S shapes where the second access carries an address, data,
    or control dependency on the first read."""
    tests = []
    for dep_kind in ("addr", "ctrl"):
        for wfence in ("ss", "full"):
            for v in values:
                tests.append(LitmusTest(
                    name=f"MP+{wfence}+{dep_kind}-v{v}",
                    category=CAT_DEPS,
                    threads=[
                        [("W", "y", v)] + _fence_ops(wfence) + [("W", "x", 1)],
                        [("R", "x", "r0")]
                        + _dep_read(dep_kind if dep_kind != "ctrl" else "addr",
                                    "y", "r1", "r0"),
                    ],
                ))
    for dep_kind in ("addr", "data", "ctrl"):
        for wfence in ("ss", "full"):
            for v in values:
                tests.append(LitmusTest(
                    name=f"S+{wfence}+{dep_kind}-v{v}",
                    category=CAT_DEPS,
                    threads=[
                        [("W", "y", v + 1)] + _fence_ops(wfence)
                        + [("W", "x", 1)],
                        [("R", "x", "r0")]
                        + _dep_write(dep_kind, "y", v, "r0"),
                    ],
                ))
    for dep_kind in ("addr", "data", "ctrl"):
        tests.append(LitmusTest(
            name=f"LB+{dep_kind}s",
            category=CAT_DEPS,
            threads=[
                [("R", "x", "r0")] + _dep_write(dep_kind, "y", 1, "r0"),
                [("R", "y", "r1")] + _dep_write(dep_kind, "x", 1, "r1"),
            ],
        ))
    return tests


def generate_po_loc_tests(values: Sequence[int] = (1, 2, 3)) -> List[LitmusTest]:
    """Same-location program-order shapes (CoRR/CoWW/CoRW/CoWR)."""
    tests = []
    for v in values:
        tests.append(LitmusTest(
            name=f"CoWW-v{v}",
            category=CAT_PO_LOC,
            threads=[
                [("W", "x", v), ("W", "x", v + 1)],
                [("R", "x", "r0"), ("R", "x", "r1")],
            ],
        ))
        tests.append(LitmusTest(
            name=f"CoRR-v{v}",
            category=CAT_PO_LOC,
            threads=[
                [("W", "x", v)],
                [("R", "x", "r0"), ("R", "x", "r1")],
            ],
        ))
        tests.append(LitmusTest(
            name=f"CoRW-v{v}",
            category=CAT_PO_LOC,
            threads=[
                [("R", "x", "r0"), ("W", "x", v)],
                [("W", "x", v + 10)],
            ],
        ))
        tests.append(LitmusTest(
            name=f"CoRR-3reads-v{v}",
            category=CAT_PO_LOC,
            threads=[
                [("W", "x", v)],
                [("R", "x", "r0"), ("R", "x", "r1"), ("R", "x", "r2")],
            ],
        ))
    return tests


def generate_ppo_tests() -> List[LitmusTest]:
    """Atomic-centred preserved-program-order shapes."""
    tests = []
    for pos in ("flag", "data"):
        for rfence in ("ll", "full"):
            if pos == "flag":
                writer = [("W", "y", 1), ("A", "x", 1, "a0")]
            else:
                writer = [("A", "y", 1, "a0"), ("W", "x", 1)]
            tests.append(LitmusTest(
                name=f"MP+amo-{pos}+{rfence}",
                category=CAT_PPO,
                threads=[
                    writer,
                    [("R", "x", "r0")] + _fence_ops(rfence)
                    + [("R", "y", "r1")],
                ],
            ))
    tests.append(LitmusTest(
        name="AMO-total-order",
        category=CAT_PPO,
        threads=[
            [("A", "x", 1, "a0"), ("R", "x", "r0")],
            [("A", "x", 2, "a1"), ("R", "x", "r1")],
        ],
    ))
    tests.append(LitmusTest(
        name="SB+amos",
        category=CAT_PPO,
        threads=[
            [("A", "x", 1, "a0"), ("R", "y", "r0")],
            [("A", "y", 1, "a1"), ("R", "x", "r1")],
        ],
    ))
    return tests


def generate_rfe_tests() -> List[LitmusTest]:
    """External read-from: MP-style communication, varied fences."""
    tests = []
    for wfence in ("none", "ss", "full"):
        for rfence in ("none", "ll", "full"):
            tests.append(LitmusTest(
                name=f"MP+w.{wfence}+r.{rfence}",
                category=CAT_RFE,
                threads=[
                    [("W", "y", 1)] + _fence_ops(wfence) + [("W", "x", 1)],
                    [("R", "x", "r0")] + _fence_ops(rfence)
                    + [("R", "y", "r1")],
                ],
            ))
    return tests


def generate_rfi_tests() -> List[LitmusTest]:
    """Internal read-from: store-forwarding shapes."""
    tests = []
    for extra_fence in ("none", "full"):
        tests.append(LitmusTest(
            name=f"SB+rfi+{extra_fence}",
            category=CAT_RFI,
            threads=[
                [("W", "x", 1), ("R", "x", "f0")] + _fence_ops(extra_fence)
                + [("R", "y", "r0")],
                [("W", "y", 1), ("R", "y", "f1")] + _fence_ops(extra_fence)
                + [("R", "x", "r1")],
            ],
        ))
    for v in (1, 2):
        tests.append(LitmusTest(
            name=f"CoWR-fwd-v{v}",
            category=CAT_RFI,
            threads=[
                [("W", "x", v), ("R", "x", "r0")],
                [("W", "x", v + 10), ("R", "x", "r1")],
            ],
        ))
        tests.append(LitmusTest(
            name=f"PPOCA-lite-v{v}",
            category=CAT_RFI,
            threads=[
                [("W", "y", v), ("F", FenceKind.STORE_STORE), ("W", "x", v)],
                [("R", "x", "r0"), ("W", "z", v), ("R", "z", "f0"),
                 ("Raddr", "y", "r1", "f0")],
            ],
        ))
    return tests


def generate_co_tests() -> List[LitmusTest]:
    """Coherence-order shapes: write-write races."""
    tests = []
    for fence in ("none", "ss", "full"):
        tests.append(LitmusTest(
            name=f"2+2W+{fence}",
            category=CAT_CO,
            threads=[
                [("W", "x", 1)] + _fence_ops(fence) + [("W", "y", 2)],
                [("W", "y", 1)] + _fence_ops(fence) + [("W", "x", 2)],
            ],
        ))
        tests.append(LitmusTest(
            name=f"R+{fence}",
            category=CAT_CO,
            threads=[
                [("W", "x", 1)] + _fence_ops(fence) + [("W", "y", 1)],
                [("W", "y", 2), ("F",), ("R", "x", "r0")],
            ],
        ))
    tests.append(LitmusTest(
        name="CoWW-observed",
        category=CAT_CO,
        threads=[
            [("W", "x", 1), ("W", "x", 2)],
            [("R", "x", "r0"), ("R", "x", "r1"), ("R", "x", "r2")],
        ],
    ))
    return tests


def generate_fr_tests() -> List[LitmusTest]:
    """From-read shapes: a read racing the write that overwrites it."""
    tests = []
    for fence in ("none", "sl", "full"):
        tests.append(LitmusTest(
            name=f"SB+{fence}",
            category=CAT_FR,
            threads=[
                [("W", "x", 1)] + _fence_ops(fence) + [("R", "y", "r0")],
                [("W", "y", 1)] + _fence_ops(fence) + [("R", "x", "r1")],
            ],
        ))
    for fence in ("ss", "full"):
        tests.append(LitmusTest(
            name=f"S+{fence}",
            category=CAT_FR,
            threads=[
                [("W", "y", 2)] + _fence_ops(fence) + [("W", "x", 1)],
                [("R", "x", "r0"), ("W", "y", 1)],
            ],
        ))
    tests.append(LitmusTest(
        name="LB-fr",
        category=CAT_FR,
        threads=[
            [("R", "x", "r0"), ("W", "y", 1)],
            [("R", "y", "r1"), ("W", "x", 1)],
        ],
    ))
    return tests


def generate_barrier_tests() -> List[LitmusTest]:
    """Every base shape × every fence kind on both sides."""
    tests = []
    shapes = {
        "MP": ([("W", "y", 1), "WF", ("W", "x", 1)],
               [("R", "x", "r0"), "RF", ("R", "y", "r1")]),
        "SB": ([("W", "x", 1), "WF", ("R", "y", "r0")],
               [("W", "y", 1), "RF", ("R", "x", "r1")]),
        "LB": ([("R", "x", "r0"), "WF", ("W", "y", 1)],
               [("R", "y", "r1"), "RF", ("W", "x", 1)]),
        "S": ([("W", "y", 2), "WF", ("W", "x", 1)],
              [("R", "x", "r0"), "RF", ("W", "y", 1)]),
        "R": ([("W", "x", 1), "WF", ("W", "y", 1)],
              [("W", "y", 2), "RF", ("R", "x", "r0")]),
        "2+2W": ([("W", "x", 1), "WF", ("W", "y", 2)],
                 [("W", "y", 1), "RF", ("W", "x", 2)]),
    }
    for shape_name, (t0, t1) in shapes.items():
        for wf, rf in itertools.product(
                ("none", "ss", "ll", "sl", "ls", "full"), repeat=2):
            if wf == rf == "none":
                continue  # the unfenced base shapes live elsewhere
            def subst(ops, wtag, rtag):
                out = []
                for op in ops:
                    if op == "WF":
                        out.extend(_fence_ops(wtag))
                    elif op == "RF":
                        out.extend(_fence_ops(rtag))
                    else:
                        out.append(op)
                return out
            tests.append(LitmusTest(
                name=f"{shape_name}+f.{wf}+f.{rf}",
                category=CAT_BARRIER,
                threads=[subst(t0, wf, rf), subst(t1, wf, rf)],
            ))
    return tests


def program_digest(test: LitmusTest) -> str:
    """Stable digest of a test's symbolic program structure.

    Two tests with equal digests compile to the same events and
    dependency edges (fence kinds are normalised through their enum
    values), hence have identical allowed sets and runs — structural
    duplicates, whatever their names.
    """
    def encode(op: tuple):
        return [part.value if isinstance(part, FenceKind) else part
                for part in op]

    payload = [[encode(op) for op in ops] for ops in test.threads]
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def dedupe_tests(tests: Sequence[LitmusTest]) -> List[LitmusTest]:
    """Drop structural duplicates, keeping first occurrences."""
    seen: Set[str] = set()
    unique: List[LitmusTest] = []
    for test in tests:
        digest = program_digest(test)
        if digest in seen:
            continue
        seen.add(digest)
        unique.append(test)
    return unique


def generate_all() -> List[LitmusTest]:
    """The full generated suite, all eight Table 6 categories.

    Structurally deduplicated: the fence/dependency cross-products
    emit some identical programs under different names (e.g. the
    ``ctrl`` dependency variants compile as ``addr``), and duplicate
    programs would double-count campaign coverage.
    """
    return dedupe_tests(
        generate_dependency_tests()
        + generate_po_loc_tests()
        + generate_ppo_tests()
        + generate_rfe_tests()
        + generate_rfi_tests()
        + generate_co_tests()
        + generate_fr_tests()
        + generate_barrier_tests()
    )


def tests_by_category(tests: Sequence[LitmusTest]) -> Dict[str, List[LitmusTest]]:
    out: Dict[str, List[LitmusTest]] = {}
    for t in tests:
        out.setdefault(t.category, []).append(t)
    return out
