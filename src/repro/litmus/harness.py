"""Litmus conformance harness: hardware vs. reference model.

For every test the harness computes the axiomatically *allowed*
outcome set (the herd-log analogue) and compares the operational
engine's observed outcomes against it.  A **negative difference** —
an observed outcome the model forbids — is a consistency violation;
the paper's pass criterion is zero negative differences across the
whole suite, with faults injected on every tested location (§6.3).

Per the §6.3 methodology each test runs **twice over**: once clean
and once with faults injected on every test location, both passes
judged against the same allowed set.  ``RunConfig.clean_pass=False``
skips the clean pass for speed-sensitive callers.

:func:`check_suite` accepts ``jobs``/``cache`` and delegates to the
parallel campaign engine (:mod:`repro.litmus.campaign`); results are
bit-identical across job counts because scheduler seeds are derived
per test (:func:`repro.litmus.runner.derive_seed`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..memmodel.axioms import MemoryModel, get_model
from ..obs.metrics import MetricsRegistry
from ..memmodel.checker import ConformanceResult, check_outcome_set
from ..memmodel.enumerator import (EnumerationStats, allowed_outcomes,
                                   enumerate_executions)
from ..sim.config import ConsistencyModel
from .dsl import LitmusTest
from .runner import Outcome, RunConfig, TestRun, run_test

#: Engine consistency mode → reference axiomatic model.  The engine's
#: WC implementation honours dependencies and orders atomics, so its
#: reference is the RVWMO-lite model (WC + deps + AMO ordering); the
#: plain-WC reference would also be sound but needlessly weak.
ENGINE_REFERENCE_MODEL = {
    ConsistencyModel.SC: "SC",
    ConsistencyModel.PC: "PC",
    ConsistencyModel.WC: "RVWMO",
}


def allowed_set(test: LitmusTest, model: MemoryModel) -> Set[Outcome]:
    """The reference allowed-outcome set for a test."""
    threads, dep_edges = test.to_events()
    return allowed_outcomes(threads, model, extra_ppo=dep_edges)


def allowed_set_with_stats(
        test: LitmusTest,
        model: MemoryModel) -> Tuple[Set[Outcome], EnumerationStats]:
    """The allowed set plus the enumerator's observability record
    (prune/cache counters, wall time) for campaign reporting."""
    threads, dep_edges = test.to_events()
    result = enumerate_executions(threads, model, extra_ppo=dep_edges)
    return result.allowed, result.stats


@dataclass
class TestVerdict:
    """Both passes of one test, judged against the allowed set.

    ``run``/``conformance`` hold the primary pass (injected when
    ``config.inject_faults``); ``clean_run``/``clean_conformance``
    hold the extra clean pass, ``None`` when it was skipped or when
    the primary pass is itself clean.
    """

    test: LitmusTest
    run: TestRun
    conformance: ConformanceResult
    clean_run: Optional[TestRun] = None
    clean_conformance: Optional[ConformanceResult] = None
    #: Seconds spent running + judging this test (both passes).
    wall_time: float = 0.0
    #: ``EnumerationStats.as_dict()`` for the reference enumeration,
    #: or ``None`` when the allowed set came from a cache.
    enum_stats: Optional[Dict] = None
    #: ``ExplorationCheck.as_dict()`` for the operational exploration
    #: cross-check (:mod:`repro.explore`), or ``None`` when
    #: ``config.explore`` was off.  Carries the exploration verdict
    #: (``ok``), violation/missing outcome lists, and the
    #: ``ExplorationStats`` counters.
    explore_check: Optional[Dict] = None
    #: ``Classification.as_dict()`` from the static pre-filter
    #: (:mod:`repro.staticanalysis`), plus a ``short_circuited`` flag
    #: recording whether the allowed set was enumerated under SC
    #: instead of the relaxed reference.  ``None`` when
    #: ``config.prefilter`` was off or a cached allowed set was used.
    static_check: Optional[Dict] = None
    #: Static FSB taint verdicts (:mod:`repro.staticanalysis.taint`),
    #: one ``TaintReport.as_dict()`` per drain policy under
    #: ``"policies"`` plus aggregate ``hazard``/``leak_free``/
    #: ``unknown`` flags and a total ``flows`` count.  A hazard is a
    #: security *report*, never a conformance failure.  ``None`` when
    #: ``config.taint`` was off.
    taint_check: Optional[Dict] = None

    @property
    def explore_ok(self) -> Optional[bool]:
        """The exploration cross-check verdict; ``None`` if not run."""
        if self.explore_check is None:
            return None
        return bool(self.explore_check["ok"])

    @property
    def ok(self) -> bool:
        if not (self.conformance.conforms
                and self.run.contract_violations == 0):
            return False
        if self.explore_ok is False:
            return False
        if self.clean_run is not None:
            return (self.clean_conformance is not None
                    and self.clean_conformance.conforms
                    and self.clean_run.contract_violations == 0)
        return True


@dataclass
class SuiteReport:
    """Aggregate verdict over a litmus campaign."""

    model: str
    injected: bool
    verdicts: List[TestVerdict] = field(default_factory=list)
    #: Campaign observability (filled by the campaign engine).
    wall_time: float = 0.0
    jobs: int = 1
    cache_hits: int = 0
    cache_misses: int = 0
    #: Telemetry summary block — span/event counts plus the merged
    #: metrics registry — filled by the campaign engine when a live
    #: :mod:`repro.obs` context was ambient; ``None`` otherwise.
    #: Serialised as the report schema's (v5+) ``telemetry`` entry.
    telemetry: Optional[Dict] = None
    #: Verdict-store block — path, record count, replay hits/misses,
    #: store-served allowed sets — filled by the campaign engine when
    #: a :class:`repro.store.VerdictStore` was attached; ``None``
    #: otherwise.  Serialised as the report schema's (v6+) ``store``
    #: entry.
    store: Optional[Dict] = None
    #: Whether the campaign ran in incremental mode (store-backed
    #: replay of unchanged fingerprints).
    incremental: bool = False
    #: Randgen corpus provenance — generator version, seed,
    #: cores/features config, attempt + dedup counts, template mix,
    #: corpus digest (:meth:`repro.litmus.randgen.Corpus.
    #: report_block`) — filled by the CLI when the suite came from the
    #: constrained-random generator; ``None`` otherwise.  Serialised
    #: as the report schema's (v7+) ``corpus`` entry.
    corpus: Optional[Dict] = None

    @property
    def tests(self) -> int:
        return len(self.verdicts)

    @property
    def failures(self) -> List[TestVerdict]:
        return [v for v in self.verdicts if not v.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def total_imprecise_exceptions(self) -> int:
        return sum(v.run.imprecise_exceptions for v in self.verdicts)

    @property
    def total_precise_exceptions(self) -> int:
        return sum(v.run.precise_exceptions for v in self.verdicts)

    @property
    def total_clean_imprecise_exceptions(self) -> int:
        return sum(v.clean_run.imprecise_exceptions
                   for v in self.verdicts if v.clean_run is not None)

    @property
    def total_clean_precise_exceptions(self) -> int:
        return sum(v.clean_run.precise_exceptions
                   for v in self.verdicts if v.clean_run is not None)

    @property
    def clean_passes(self) -> int:
        return sum(1 for v in self.verdicts if v.clean_run is not None)

    def metrics_registry(self) -> MetricsRegistry:
        """The suite's per-subsystem counters as one
        :class:`~repro.obs.metrics.MetricsRegistry`, rebuilt from the
        verdicts on each call: ``enum.*`` from the reference
        enumerations, ``explore.*`` from the operational cross-checks,
        ``static.*`` from the pre-filter classifications.  The legacy
        totals accessors below are namespace projections of this
        registry — one canonical store, the historical dict layouts
        served as thin views."""
        reg = MetricsRegistry()
        for v in self.verdicts:
            if v.enum_stats is None:
                reg.counter("enum.tests_cached").inc()
            else:
                reg.counter("enum.tests_enumerated").inc()
                for key, value in v.enum_stats.items():
                    if isinstance(value, (int, float)):
                        reg.counter(f"enum.{key}").inc(value)
            if v.explore_check is None:
                reg.counter("explore.tests_skipped").inc()
            else:
                reg.counter("explore.tests_explored").inc()
                if not v.explore_check["ok"]:
                    reg.counter("explore.mismatches").inc()
                for key, value in v.explore_check["stats"].items():
                    if isinstance(value, (int, float)):
                        reg.counter(f"explore.{key}").inc(value)
            if v.static_check is None:
                reg.counter("static.tests_skipped").inc()
            else:
                reg.counter("static.tests_classified").inc()
                verdict = str(v.static_check.get("verdict", ""))
                if verdict:
                    reg.counter(
                        "static." + verdict.replace("-", "_")).inc()
                if v.static_check.get("short_circuited"):
                    reg.counter("static.short_circuited").inc()
                reg.counter("static.wall_time_s").inc(
                    v.static_check.get("wall_time_s", 0.0))
            if v.taint_check is None:
                reg.counter("taint.tests_skipped").inc()
            else:
                reg.counter("taint.tests_analyzed").inc()
                if v.taint_check.get("hazard"):
                    reg.counter("taint.leak_hazard").inc()
                elif v.taint_check.get("unknown"):
                    reg.counter("taint.unknown").inc()
                else:
                    reg.counter("taint.leak_free").inc()
                reg.counter("taint.flows").inc(
                    v.taint_check.get("flows", 0))
                reg.counter("taint.wall_time_s").inc(
                    v.taint_check.get("wall_time_s", 0.0))
        return reg

    @staticmethod
    def _totals_view(registry: MetricsRegistry, prefix: str,
                     keys: Sequence[str]) -> Dict[str, float]:
        """Project one namespace of ``registry`` onto a legacy totals
        layout: fixed key set, integer counts, rounded wall time."""
        projected = registry.namespace(prefix)
        return {key: (round(projected.get(key, 0.0), 6)
                      if key == "wall_time_s"
                      else int(projected.get(key, 0)))
                for key in keys}

    def enumerator_totals(self) -> Dict[str, float]:
        """Summed :class:`~repro.memmodel.enumerator.EnumerationStats`
        counters over every verdict that enumerated its allowed set
        (cache-served tests carry no stats and are counted in
        ``tests_cached``).  A thin view over :meth:`metrics_registry`
        (namespace ``enum``)."""
        return self._totals_view(self.metrics_registry(), "enum", (
            "tests_enumerated", "tests_cached", "rf_assignments",
            "rf_partial_prunes", "addr_co_prunes",
            "known_outcome_skips", "candidates_examined",
            "candidates_consistent", "relation_cache_hits",
            "wall_time_s"))

    def explorer_totals(self) -> Dict[str, float]:
        """Summed :class:`~repro.explore.ExplorationStats` counters
        over every verdict that ran the operational exploration
        cross-check (``None`` entries are counted in
        ``tests_skipped``).  A thin view over :meth:`metrics_registry`
        (namespace ``explore``)."""
        return self._totals_view(self.metrics_registry(), "explore", (
            "tests_explored", "tests_skipped", "mismatches",
            "states_visited", "transitions_executed", "interleavings",
            "sleep_set_blocks", "races_detected", "wall_time_s"))

    def static_totals(self) -> Dict[str, float]:
        """Summed static pre-filter counters over every verdict that
        classified its test (``None`` entries are counted in
        ``tests_skipped``).  A thin view over :meth:`metrics_registry`
        (namespace ``static``)."""
        return self._totals_view(self.metrics_registry(), "static", (
            "tests_classified", "tests_skipped", "sc_equivalent",
            "relaxable", "unknown", "short_circuited", "wall_time_s"))

    def taint_totals(self) -> Dict[str, float]:
        """Summed static FSB taint counters over every verdict that
        analyzed its test (``None`` entries are counted in
        ``tests_skipped``).  A test counts as ``leak_hazard`` when
        *either* drain policy has a hazard flow.  A thin view over
        :meth:`metrics_registry` (namespace ``taint``)."""
        return self._totals_view(self.metrics_registry(), "taint", (
            "tests_analyzed", "tests_skipped", "leak_hazard",
            "leak_free", "unknown", "flows", "wall_time_s"))

    def category_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for v in self.verdicts:
            counts[v.test.category] = counts.get(v.test.category, 0) + 1
        return counts

    def summary(self, explain: bool = False) -> str:
        """``explain=True`` appends, for each failing test, the witness
        execution and forbidding cycle of its first negative
        difference (see :mod:`repro.memmodel.witness`)."""
        status = "OK" if self.ok else "VIOLATIONS"
        lines = [
            f"litmus suite [{status}] model={self.model} "
            f"faults={'on' if self.injected else 'off'} "
            f"tests={self.tests} "
            f"imprecise={self.total_imprecise_exceptions} "
            f"precise={self.total_precise_exceptions}"
        ]
        if self.clean_passes:
            lines.append(
                f"  clean passes={self.clean_passes} "
                f"imprecise={self.total_clean_imprecise_exceptions} "
                f"precise={self.total_clean_precise_exceptions}")
        if self.wall_time:
            lines.append(
                f"  wall={self.wall_time:.2f}s jobs={self.jobs} "
                f"allowed-set cache hits={self.cache_hits} "
                f"misses={self.cache_misses}")
        if self.store is not None:
            lines.append(
                f"  store replays={self.store['hits']} "
                f"computed={self.store['misses']} "
                f"records={self.store['records']} "
                f"incremental={'on' if self.incremental else 'off'}")
        for v in self.failures:
            neg = set(v.conformance.negative_differences)
            if v.clean_conformance is not None:
                neg |= v.clean_conformance.negative_differences
            contract = v.run.contract_violations + (
                v.clean_run.contract_violations if v.clean_run else 0)
            lines.append(f"  !!! {v.test.name}: "
                         f"negative differences {sorted(neg)} "
                         f"contract violations {contract}")
            if v.explore_ok is False:
                lines.append(
                    f"      explorer mismatch: violations="
                    f"{v.explore_check['violations']} "
                    f"missing={v.explore_check['missing']}")
            if explain and neg:
                from ..memmodel.witness import explain_forbidden
                reference = get_model(ENGINE_REFERENCE_MODEL[self.model])
                threads, deps = v.test.to_events()
                lines.append(explain_forbidden(
                    threads, reference, sorted(next(iter(neg))),
                    extra_ppo=deps))
        return "\n".join(lines)


def check_test(test: LitmusTest,
               config: Optional[RunConfig] = None,
               allowed: Optional[Set[Outcome]] = None) -> TestVerdict:
    """Run one test and judge it against its reference model.

    Runs the primary pass per ``config.inject_faults``; when faults
    are injected and ``config.clean_pass`` is set (the default), a
    clean pass also runs, judged against the same allowed set.
    ``allowed`` lets campaign callers supply a cached allowed set and
    skip re-enumeration.
    """
    config = config or RunConfig()
    started = time.perf_counter()
    reference = get_model(ENGINE_REFERENCE_MODEL[config.model])
    enum_stats = None
    static_check = None
    if config.prefilter and allowed is None:
        # Sound pre-filter: an SC_EQUIVALENT verdict proves the
        # reference allowed set is bit-identical to SC's, so the far
        # cheaper SC enumeration stands in for the relaxed one.
        from ..staticanalysis import classify
        cls = classify(test, reference)
        static_check = cls.as_dict()
        short = cls.sc_equivalent and reference.name != "SC"
        static_check["short_circuited"] = short
        if short:
            allowed, stats = allowed_set_with_stats(test, get_model("SC"))
            enum_stats = stats.as_dict()
    if allowed is None:
        allowed, stats = allowed_set_with_stats(test, reference)
        enum_stats = stats.as_dict()
    explore_check = None
    if config.explore:
        from ..explore import crosscheck_test
        check = crosscheck_test(test, config.model,
                                strategy=config.explore,
                                allowed=allowed,
                                prefilter=config.prefilter)
        explore_check = check.as_dict()
    taint_check = None
    if config.taint:
        from ..memmodel.imprecise import DrainPolicy
        from ..staticanalysis import analyze_taint
        reports = {policy.value: analyze_taint(test, policy)
                   for policy in DrainPolicy}
        taint_check = {
            "policies": {name: r.as_dict()
                         for name, r in sorted(reports.items())},
            "hazard": any(r.verdict.value == "leak-hazard"
                          for r in reports.values()),
            "leak_free": all(r.leak_free for r in reports.values()),
            "unknown": any(r.verdict.value == "unknown"
                           for r in reports.values()),
            "flows": sum(len(r.flows) for r in reports.values()),
            "wall_time_s": round(sum(r.wall_time_s
                                     for r in reports.values()), 6),
        }
    run = run_test(test, config)
    conformance = check_outcome_set(allowed, run.outcomes,
                                    model_name=reference.name)
    clean_run = clean_conformance = None
    if config.inject_faults and config.clean_pass:
        clean_run = run_test(test, replace(config, inject_faults=False))
        clean_conformance = check_outcome_set(
            allowed, clean_run.outcomes, model_name=reference.name)
    return TestVerdict(test=test, run=run, conformance=conformance,
                       clean_run=clean_run,
                       clean_conformance=clean_conformance,
                       wall_time=time.perf_counter() - started,
                       enum_stats=enum_stats,
                       explore_check=explore_check,
                       static_check=static_check,
                       taint_check=taint_check)


def check_suite(tests: Sequence[LitmusTest],
                config: Optional[RunConfig] = None,
                jobs: int = 1,
                cache=None,
                store=None,
                incremental: bool = False) -> SuiteReport:
    """The §6.3 campaign: every test, faults injected (plus a clean
    pass each), zero negative differences expected.

    ``jobs`` > 1 shards the tests over a worker pool; ``cache`` is an
    :class:`repro.litmus.campaign.AllowedSetCache` or a path for the
    persistent allowed-set cache; ``store`` is a
    :class:`repro.store.VerdictStore` (or directory path) persisting
    full verdict records, and ``incremental=True`` replays stored
    verdicts whose input fingerprints did not change instead of
    re-running them.  Outcome sets are identical for any ``jobs``
    value (per-test seed derivation).
    """
    from .campaign import run_campaign
    return run_campaign(tests, config=config, jobs=jobs, cache=cache,
                        store=store, incremental=incremental)
