"""Litmus conformance harness: hardware vs. reference model.

For every test the harness computes the axiomatically *allowed*
outcome set (the herd-log analogue) and compares the operational
engine's observed outcomes against it.  A **negative difference** —
an observed outcome the model forbids — is a consistency violation;
the paper's pass criterion is zero negative differences across the
whole suite, with faults injected on every tested location (§6.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..memmodel.axioms import MemoryModel, get_model
from ..memmodel.checker import ConformanceResult, check_outcome_set
from ..memmodel.enumerator import allowed_outcomes
from ..sim.config import ConsistencyModel
from .dsl import LitmusTest
from .runner import Outcome, RunConfig, TestRun, run_test

#: Engine consistency mode → reference axiomatic model.  The engine's
#: WC implementation honours dependencies and orders atomics, so its
#: reference is the RVWMO-lite model (WC + deps + AMO ordering); the
#: plain-WC reference would also be sound but needlessly weak.
ENGINE_REFERENCE_MODEL = {
    ConsistencyModel.SC: "SC",
    ConsistencyModel.PC: "PC",
    ConsistencyModel.WC: "RVWMO",
}


def allowed_set(test: LitmusTest, model: MemoryModel) -> Set[Outcome]:
    """The reference allowed-outcome set for a test."""
    threads, dep_edges = test.to_events()
    return allowed_outcomes(threads, model, extra_ppo=dep_edges)


@dataclass
class TestVerdict:
    test: LitmusTest
    run: TestRun
    conformance: ConformanceResult

    @property
    def ok(self) -> bool:
        return (self.conformance.conforms
                and self.run.contract_violations == 0)


@dataclass
class SuiteReport:
    """Aggregate verdict over a litmus campaign."""

    model: str
    injected: bool
    verdicts: List[TestVerdict] = field(default_factory=list)

    @property
    def tests(self) -> int:
        return len(self.verdicts)

    @property
    def failures(self) -> List[TestVerdict]:
        return [v for v in self.verdicts if not v.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def total_imprecise_exceptions(self) -> int:
        return sum(v.run.imprecise_exceptions for v in self.verdicts)

    @property
    def total_precise_exceptions(self) -> int:
        return sum(v.run.precise_exceptions for v in self.verdicts)

    def category_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for v in self.verdicts:
            counts[v.test.category] = counts.get(v.test.category, 0) + 1
        return counts

    def summary(self, explain: bool = False) -> str:
        """``explain=True`` appends, for each failing test, the witness
        execution and forbidding cycle of its first negative
        difference (see :mod:`repro.memmodel.witness`)."""
        status = "OK" if self.ok else "VIOLATIONS"
        lines = [
            f"litmus suite [{status}] model={self.model} "
            f"faults={'on' if self.injected else 'off'} "
            f"tests={self.tests} "
            f"imprecise={self.total_imprecise_exceptions} "
            f"precise={self.total_precise_exceptions}"
        ]
        for v in self.failures:
            neg = v.conformance.negative_differences
            lines.append(f"  !!! {v.test.name}: "
                         f"negative differences {sorted(neg)} "
                         f"contract violations {v.run.contract_violations}")
            if explain and neg:
                from ..memmodel.witness import explain_forbidden
                reference = get_model(ENGINE_REFERENCE_MODEL[self.model])
                threads, deps = v.test.to_events()
                lines.append(explain_forbidden(
                    threads, reference, sorted(next(iter(neg))),
                    extra_ppo=deps))
        return "\n".join(lines)


def check_test(test: LitmusTest,
               config: Optional[RunConfig] = None) -> TestVerdict:
    """Run one test and judge it against its reference model."""
    config = config or RunConfig()
    reference = get_model(ENGINE_REFERENCE_MODEL[config.model])
    allowed = allowed_set(test, reference)
    run = run_test(test, config)
    conformance = check_outcome_set(allowed, run.outcomes,
                                    model_name=reference.name)
    return TestVerdict(test=test, run=run, conformance=conformance)


def check_suite(tests: Sequence[LitmusTest],
                config: Optional[RunConfig] = None) -> SuiteReport:
    """The §6.3 campaign: every test, faults injected, zero negative
    differences expected."""
    config = config or RunConfig()
    report = SuiteReport(model=config.model, injected=config.inject_faults)
    for test in tests:
        report.verdicts.append(check_test(test, config))
    return report
