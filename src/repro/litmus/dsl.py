"""Litmus-test DSL with dual compilation.

A test is written once in a compact symbolic form and compiled twice:

* to an ISA :class:`~repro.sim.program.Program` for the operational
  engine (dependencies become real register chains: ``xor`` +
  indexed addressing for address deps, value arithmetic for data
  deps, a conditional branch for control deps);
* to :mod:`repro.memmodel` events + ``extra_ppo`` dependency edges for
  the axiomatic reference model.

Op vocabulary (``loc`` is a symbolic location name, ``reg`` an
observation register name):

=======================  =============================================
``("W", loc, val)``      store ``val``
``("R", loc, reg)``      load into observation register ``reg``
``("F",)``               full fence
``("F", kind)``          directional fence (:class:`FenceKind`)
``("A", loc, val, reg)`` atomic swap: write ``val``, old value → reg
``("Raddr", loc, reg, dep)``  load with *address* dependency on reg
                              ``dep``
``("Waddr", loc, val, dep)``  store with address dependency
``("Wdata", loc, val, dep)``  store whose *data* depends on ``dep``
``("Wctrl", loc, val, dep)``  store behind a branch on ``dep``
``("Rctrl", loc, reg, dep)``  load behind a branch on ``dep``
=======================  =============================================

Per RVWMO, address and data dependencies order loads and stores, and
control dependencies order only stores; the event compilation adds
``extra_ppo`` edges accordingly (``Rctrl`` gets no edge — hardware may
speculate loads past branches, though our engine does not).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..memmodel.events import Event, EventKind, FenceKind
from ..memmodel.relations import Edge
from ..sim import isa
from ..sim.isa import Instruction
from ..sim.program import Program, make_program

#: Symbolic locations are laid out one per 4 KB page so that EInject
#: poisoning of one location never aliases another.
LOCATION_STRIDE = 0x1000
LOCATION_BASE = 0x100000


@dataclass(frozen=True)
class LitmusOutcome:
    """A final condition over observation registers."""

    values: Tuple[Tuple[str, int], ...]

    @classmethod
    def of(cls, **kv: int) -> "LitmusOutcome":
        return cls(tuple(sorted(kv.items())))

    def as_tuple(self) -> Tuple[Tuple[str, int], ...]:
        return self.values


@dataclass
class LitmusTest:
    """One litmus test: threads, category, and interesting outcomes."""

    name: str
    category: str
    threads: List[List[tuple]]
    #: Outcome the weaker model permits but a stronger model forbids
    #: (purely informational; the harness computes allowed sets).
    spotlight: Optional[LitmusOutcome] = None
    #: Initialiser block as parsed from ``.litmus`` text — keys are
    #: location names or ``(thread, register)`` pairs.  Informational
    #: (compilation zero-initialises memory); the linter checks it
    #: for dead entries (rule ``L004``).
    init: Optional[Dict] = field(default=None, compare=False, repr=False)

    @property
    def locations(self) -> List[str]:
        locs: Set[str] = set()
        for thread in self.threads:
            for op in thread:
                if op[0] != "F":
                    locs.add(op[1])
        return sorted(locs)

    @property
    def registers(self) -> List[str]:
        regs = []
        for thread in self.threads:
            for op in thread:
                if op[0] in ("R", "Raddr", "Rctrl"):
                    regs.append(op[2])
                elif op[0] == "A":
                    regs.append(op[3])
        return regs

    def location_addr(self, loc: str) -> int:
        return LOCATION_BASE + self.locations.index(loc) * LOCATION_STRIDE

    # ------------------------------------------------------------------
    # Compilation to the operational engine
    # ------------------------------------------------------------------
    def to_program(self) -> Program:
        threads = []
        for tid, ops in enumerate(self.threads):
            threads.append(self._compile_thread(ops))
        return make_program(threads, name=self.name)

    def _compile_thread(self, ops: Sequence[tuple]) -> List[Instruction]:
        instrs: List[Instruction] = []
        reg_ids: Dict[str, int] = {}

        def reg_for(name: str) -> int:
            if name not in reg_ids:
                reg_ids[name] = len(reg_ids) + 1
            return reg_ids[name]

        scratch = 30  # scratch register for dependency chains

        for op in ops:
            kind = op[0]
            if kind == "W":
                _, loc, val = op
                instrs.append(isa.store(self.location_addr(loc), value=val))
            elif kind == "R":
                _, loc, reg = op
                instrs.append(isa.load(reg_for(reg),
                                       self.location_addr(loc), label=reg))
            elif kind == "F":
                fence_kind = op[1] if len(op) > 1 else FenceKind.FULL
                instrs.append(isa.fence(fence_kind))
            elif kind == "A":
                _, loc, val, reg = op
                instrs.append(isa.amoswap(reg_for(reg),
                                          self.location_addr(loc),
                                          imm=val, label=reg))
            elif kind == "Raddr":
                _, loc, reg, dep = op
                instrs.append(isa.xor(scratch, reg_for(dep), reg_for(dep)))
                instrs.append(isa.load(reg_for(reg),
                                       self.location_addr(loc),
                                       index_reg=scratch, label=reg))
            elif kind == "Waddr":
                _, loc, val, dep = op
                instrs.append(isa.xor(scratch, reg_for(dep), reg_for(dep)))
                instrs.append(isa.store(self.location_addr(loc), value=val,
                                        index_reg=scratch))
            elif kind == "Wdata":
                _, loc, val, dep = op
                instrs.append(isa.xor(scratch, reg_for(dep), reg_for(dep)))
                instrs.append(isa.addi(scratch, scratch, val))
                instrs.append(isa.store(self.location_addr(loc),
                                        src_reg=scratch))
            elif kind == "Wctrl":
                _, loc, val, dep = op
                # beq dep,dep always taken, skipping 0 instructions:
                # a branch that depends on `dep` but never diverts.
                instrs.append(isa.beq(reg_for(dep), reg_for(dep), 0))
                instrs.append(isa.store(self.location_addr(loc), value=val))
            elif kind == "Rctrl":
                _, loc, reg, dep = op
                instrs.append(isa.beq(reg_for(dep), reg_for(dep), 0))
                instrs.append(isa.load(reg_for(reg),
                                       self.location_addr(loc), label=reg))
            else:
                raise ValueError(f"unknown litmus op {kind!r}")
        return instrs

    # ------------------------------------------------------------------
    # Compilation to the axiomatic model
    # ------------------------------------------------------------------
    def to_events(self) -> Tuple[List[List[Event]], Set[Edge]]:
        """Returns (threads of events, dependency extra_ppo edges)."""
        threads: List[List[Event]] = []
        edges: Set[Edge] = set()
        for tid, ops in enumerate(self.threads):
            events: List[Event] = []
            producer: Dict[str, Event] = {}
            index = 0
            for op in ops:
                kind = op[0]
                if kind == "W":
                    _, loc, val = op
                    events.append(Event(tid, index, EventKind.STORE,
                                        addr=self.location_addr(loc),
                                        value=val))
                elif kind == "R":
                    _, loc, reg = op
                    ev = Event(tid, index, EventKind.LOAD,
                               addr=self.location_addr(loc), tag=reg)
                    events.append(ev)
                    producer[reg] = ev
                elif kind == "F":
                    fence_kind = op[1] if len(op) > 1 else FenceKind.FULL
                    events.append(Event(tid, index, EventKind.FENCE,
                                        fence=fence_kind))
                elif kind == "A":
                    _, loc, val, reg = op
                    ev = Event(tid, index, EventKind.ATOMIC,
                               addr=self.location_addr(loc), value=val,
                               tag=reg)
                    events.append(ev)
                    producer[reg] = ev
                elif kind in ("Raddr", "Rctrl"):
                    _, loc, reg, dep = op
                    ev = Event(tid, index, EventKind.LOAD,
                               addr=self.location_addr(loc), tag=reg)
                    events.append(ev)
                    producer[reg] = ev
                    if kind == "Raddr" and dep in producer:
                        edges.add((producer[dep].uid, ev.uid))
                    # Rctrl: control deps do not order loads (RVWMO).
                elif kind in ("Waddr", "Wdata", "Wctrl"):
                    _, loc, val, dep = op
                    ev = Event(tid, index, EventKind.STORE,
                               addr=self.location_addr(loc), value=val)
                    events.append(ev)
                    if dep in producer:
                        edges.add((producer[dep].uid, ev.uid))
                else:
                    raise ValueError(f"unknown litmus op {kind!r}")
                index += 1
            threads.append(events)
        return threads, edges
