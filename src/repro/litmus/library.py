"""Classic two-core litmus tests.

The canonical shapes from the memory-model literature (names follow
the herd/litmus conventions), each tagged with the Table 6 ordering
category it primarily exercises.
"""

from __future__ import annotations

from typing import List

from ..memmodel.events import FenceKind
from .dsl import LitmusOutcome, LitmusTest

# Table 6 category names.
CAT_DEPS = "Dependencies"
CAT_PO_LOC = "Program order (same location)"
CAT_PPO = "Preserved program order"
CAT_RFE = "External read-from order"
CAT_RFI = "Internal read-from order"
CAT_CO = "Coherence order"
CAT_FR = "From-read order"
CAT_BARRIER = "Barriers"

SS = FenceKind.STORE_STORE
LL = FenceKind.LOAD_LOAD
SL = FenceKind.STORE_LOAD
LS = FenceKind.LOAD_STORE


def message_passing() -> LitmusTest:
    """MP: the Figure 1 shape (unfenced)."""
    return LitmusTest(
        name="MP",
        category=CAT_RFE,
        threads=[
            [("W", "y", 1), ("W", "x", 1)],
            [("R", "x", "r0"), ("R", "y", "r1")],
        ],
        spotlight=LitmusOutcome.of(r0=1, r1=0),
    )


def message_passing_fenced() -> LitmusTest:
    """MP+fence.w.w+fence.r.r — Figure 1's explicit fences."""
    return LitmusTest(
        name="MP+fences",
        category=CAT_BARRIER,
        threads=[
            [("W", "y", 1), ("F", SS), ("W", "x", 1)],
            [("R", "x", "r0"), ("F", LL), ("R", "y", "r1")],
        ],
        spotlight=LitmusOutcome.of(r0=1, r1=0),
    )


def store_buffering() -> LitmusTest:
    """SB / Dekker: the W->R relaxation every store buffer exhibits."""
    return LitmusTest(
        name="SB",
        category=CAT_FR,
        threads=[
            [("W", "x", 1), ("R", "y", "r0")],
            [("W", "y", 1), ("R", "x", "r1")],
        ],
        spotlight=LitmusOutcome.of(r0=0, r1=0),
    )


def store_buffering_fenced() -> LitmusTest:
    return LitmusTest(
        name="SB+fences",
        category=CAT_BARRIER,
        threads=[
            [("W", "x", 1), ("F",), ("R", "y", "r0")],
            [("W", "y", 1), ("F",), ("R", "x", "r1")],
        ],
        spotlight=LitmusOutcome.of(r0=0, r1=0),
    )


def load_buffering() -> LitmusTest:
    """LB: R->W relaxation (forbidden outcome never seen on our
    engine, which does not speculate stores)."""
    return LitmusTest(
        name="LB",
        category=CAT_FR,
        threads=[
            [("R", "x", "r0"), ("W", "y", 1)],
            [("R", "y", "r1"), ("W", "x", 1)],
        ],
        spotlight=LitmusOutcome.of(r0=1, r1=1),
    )


def s_test() -> LitmusTest:
    """S: W->W on one side, R->W on the other."""
    return LitmusTest(
        name="S",
        category=CAT_FR,
        threads=[
            [("W", "y", 2), ("F", SS), ("W", "x", 1)],
            [("R", "x", "r0"), ("W", "y", 1)],
        ],
        spotlight=LitmusOutcome.of(r0=1),
    )


def r_test() -> LitmusTest:
    """R: W->W against W->R."""
    return LitmusTest(
        name="R",
        category=CAT_CO,
        threads=[
            [("W", "x", 1), ("F", SS), ("W", "y", 1)],
            [("W", "y", 2), ("F",), ("R", "x", "r0")],
        ],
        spotlight=LitmusOutcome.of(r0=0),
    )


def two_plus_two_w() -> LitmusTest:
    """2+2W: coherence-order cycle between two write pairs."""
    return LitmusTest(
        name="2+2W",
        category=CAT_CO,
        threads=[
            [("W", "x", 1), ("F", SS), ("W", "y", 2)],
            [("W", "y", 1), ("F", SS), ("W", "x", 2)],
        ],
    )


def corr() -> LitmusTest:
    """CoRR: same-location reads must not go backwards."""
    return LitmusTest(
        name="CoRR",
        category=CAT_PO_LOC,
        threads=[
            [("W", "x", 1)],
            [("R", "x", "r0"), ("R", "x", "r1")],
        ],
        spotlight=LitmusOutcome.of(r0=1, r1=0),
    )


def coww() -> LitmusTest:
    """CoWW: same-location writes stay in program order."""
    return LitmusTest(
        name="CoWW",
        category=CAT_PO_LOC,
        threads=[
            [("W", "x", 1), ("W", "x", 2)],
            [("R", "x", "r0"), ("R", "x", "r1")],
        ],
        spotlight=LitmusOutcome.of(r0=2, r1=1),
    )


def cowr() -> LitmusTest:
    """CoWR: a read after a same-location write sees it (or newer)."""
    return LitmusTest(
        name="CoWR",
        category=CAT_RFI,
        threads=[
            [("W", "x", 1), ("R", "x", "r0")],
            [("W", "x", 2)],
        ],
    )


def corw() -> LitmusTest:
    """CoRW: read then write same location."""
    return LitmusTest(
        name="CoRW",
        category=CAT_PO_LOC,
        threads=[
            [("R", "x", "r0"), ("W", "x", 1)],
            [("W", "x", 2)],
        ],
    )


def sb_with_forwarding() -> LitmusTest:
    """SB+rfi: each core re-reads its own store before the remote
    load — internal read-from (store forwarding)."""
    return LitmusTest(
        name="SB+rfi",
        category=CAT_RFI,
        threads=[
            [("W", "x", 1), ("R", "x", "f0"), ("R", "y", "r0")],
            [("W", "y", 1), ("R", "y", "f1"), ("R", "x", "r1")],
        ],
        spotlight=LitmusOutcome.of(f0=1, f1=1, r0=0, r1=0),
    )


def mp_addr_dep() -> LitmusTest:
    """MP+fence.w.w+addr: address dependency orders the reads."""
    return LitmusTest(
        name="MP+addr",
        category=CAT_DEPS,
        threads=[
            [("W", "y", 1), ("F", SS), ("W", "x", 1)],
            [("R", "x", "r0"), ("Raddr", "y", "r1", "r0")],
        ],
        spotlight=LitmusOutcome.of(r0=1, r1=0),
    )


def mp_data_dep() -> LitmusTest:
    """S+fence.w.w+data: data dependency orders read->write."""
    return LitmusTest(
        name="S+data",
        category=CAT_DEPS,
        threads=[
            [("W", "y", 2), ("F", SS), ("W", "x", 1)],
            [("R", "x", "r0"), ("Wdata", "y", 1, "r0")],
        ],
    )


def mp_ctrl_dep() -> LitmusTest:
    """S+fence.w.w+ctrl: control dependency orders read->write."""
    return LitmusTest(
        name="S+ctrl",
        category=CAT_DEPS,
        threads=[
            [("W", "y", 2), ("F", SS), ("W", "x", 1)],
            [("R", "x", "r0"), ("Wctrl", "y", 1, "r0")],
        ],
    )


def amo_ordering() -> LitmusTest:
    """MP with an AMO as the flag write: atomics are ordered (PPO)."""
    return LitmusTest(
        name="MP+amo",
        category=CAT_PPO,
        threads=[
            [("W", "y", 1), ("A", "x", 1, "a0")],
            [("R", "x", "r0"), ("F", LL), ("R", "y", "r1")],
        ],
        spotlight=LitmusOutcome.of(r0=1, r1=0),
    )


def amo_fetch_order() -> LitmusTest:
    """Two AMOs to one location observe a total order (PPO/coherence)."""
    return LitmusTest(
        name="AMO+AMO",
        category=CAT_PPO,
        threads=[
            [("A", "x", 1, "a0")],
            [("A", "x", 2, "a1")],
        ],
    )


def mp_sl_fence() -> LitmusTest:
    """SB+fence.w.r on both sides: the store-load fence kills the SB
    relaxation."""
    return LitmusTest(
        name="SB+fence.w.r",
        category=CAT_BARRIER,
        threads=[
            [("W", "x", 1), ("F", SL), ("R", "y", "r0")],
            [("W", "y", 1), ("F", SL), ("R", "x", "r1")],
        ],
        spotlight=LitmusOutcome.of(r0=0, r1=0),
    )


def wrc_two_core() -> LitmusTest:
    """WRC collapsed onto two cores via forwarding (rfi + rfe)."""
    return LitmusTest(
        name="WRC-2",
        category=CAT_RFE,
        threads=[
            [("W", "x", 1), ("R", "x", "f0"), ("F", LS), ("W", "y", 1)],
            [("R", "y", "r0"), ("F", LL), ("R", "x", "r1")],
        ],
        spotlight=LitmusOutcome.of(r0=1, r1=0),
    )


def corw2() -> LitmusTest:
    """CoRW2: read-then-write racing an external write."""
    return LitmusTest(
        name="CoRW2",
        category=CAT_PO_LOC,
        threads=[
            [("R", "x", "r0"), ("W", "x", 2)],
            [("R", "x", "r1"), ("W", "x", 1)],
        ],
    )


def rwc() -> LitmusTest:
    """RWC collapsed to two cores: read-to-write causality."""
    return LitmusTest(
        name="RWC-2",
        category=CAT_FR,
        threads=[
            [("W", "x", 1), ("F",), ("R", "y", "r0")],
            [("W", "y", 1), ("F", SS), ("W", "x", 2), ("R", "x", "r1")],
        ],
    )


def sb_one_fence() -> LitmusTest:
    """SB with only one side fenced — the relaxation survives."""
    return LitmusTest(
        name="SB+onefence",
        category=CAT_FR,
        threads=[
            [("W", "x", 1), ("F",), ("R", "y", "r0")],
            [("W", "y", 1), ("R", "x", "r1")],
        ],
        spotlight=LitmusOutcome.of(r0=0, r1=0),
    )


def mp_double_data() -> LitmusTest:
    """MP carrying two payload words behind one flag."""
    return LitmusTest(
        name="MP+2data",
        category=CAT_RFE,
        threads=[
            [("W", "y", 1), ("W", "z", 2), ("F", SS), ("W", "x", 1)],
            [("R", "x", "r0"), ("F", LL), ("R", "y", "r1"),
             ("R", "z", "r2")],
        ],
    )


def amo_release_chain() -> LitmusTest:
    """Two AMOs chained through a location: total order observed."""
    return LitmusTest(
        name="AMO-chain",
        category=CAT_PPO,
        threads=[
            [("A", "x", 1, "a0"), ("A", "y", 1, "a1")],
            [("A", "y", 2, "b0"), ("A", "x", 2, "b1")],
        ],
    )


def coww_external_observer() -> LitmusTest:
    """CoWW observed externally while a third value races."""
    return LitmusTest(
        name="CoWW+race",
        category=CAT_CO,
        threads=[
            [("W", "x", 1), ("W", "x", 2)],
            [("W", "x", 3), ("R", "x", "r0")],
        ],
    )


def lb_one_dep() -> LitmusTest:
    """LB with a dependency on one side only."""
    return LitmusTest(
        name="LB+onedep",
        category=CAT_DEPS,
        threads=[
            [("R", "x", "r0"), ("Wdata", "y", 1, "r0")],
            [("R", "y", "r1"), ("W", "x", 1)],
        ],
    )


def all_library_tests() -> List[LitmusTest]:
    return [
        message_passing(), message_passing_fenced(),
        store_buffering(), store_buffering_fenced(),
        load_buffering(),
        s_test(), r_test(), two_plus_two_w(),
        corr(), coww(), cowr(), corw(),
        sb_with_forwarding(),
        mp_addr_dep(), mp_data_dep(), mp_ctrl_dep(),
        amo_ordering(), amo_fetch_order(),
        mp_sl_fence(), wrc_two_core(),
        corw2(), rwc(), sb_one_fence(), mp_double_data(),
        amo_release_chain(), coww_external_observer(), lb_one_dep(),
    ]
