"""Operational litmus runner (§6.3 methodology).

Each test is run many times on the functional engine with different
scheduler seeds, twice over: once clean and once with every test
location's page marked faulting through the EInject interface before
the run — "to inject bus errors on all load, store, and atomic
instructions, which generate many precise and imprecise exceptions
that are silently handled by the minimal handler".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.streams import DrainPolicy
from ..sim.config import ConsistencyModel, SystemConfig, small_config
from ..sim.multicore import MulticoreSystem
from .dsl import LitmusTest

Outcome = Tuple[Tuple[str, int], ...]


@dataclass
class RunConfig:
    """Knobs for one litmus campaign."""

    model: str = ConsistencyModel.PC
    seeds: int = 60
    inject_faults: bool = True
    drain_policy: DrainPolicy = DrainPolicy.SAME_STREAM

    def system_config(self, cores: int) -> SystemConfig:
        return small_config(cores=cores, consistency=self.model)


@dataclass
class TestRun:
    """Observed behaviour of one test under one configuration."""

    test: LitmusTest
    model: str
    injected: bool
    outcomes: Set[Outcome] = field(default_factory=set)
    runs: int = 0
    imprecise_exceptions: int = 0
    precise_exceptions: int = 0
    contract_violations: int = 0


def run_test(test: LitmusTest, config: Optional[RunConfig] = None) -> TestRun:
    """Run one test ``config.seeds`` times; collect distinct outcomes."""
    config = config or RunConfig()
    program = test.to_program()
    result = TestRun(test=test, model=config.model,
                     injected=config.inject_faults)
    fault_addrs = [test.location_addr(loc) for loc in test.locations]

    for seed in range(config.seeds):
        system = MulticoreSystem(
            test.to_program(),
            config.system_config(program.cores),
            seed=seed,
            drain_policy=config.drain_policy,
        )
        if config.inject_faults:
            system.inject_faults(fault_addrs)
        run = system.run()
        result.outcomes.add(run.outcome)
        result.runs += 1
        result.imprecise_exceptions += run.stats.imprecise_exceptions
        result.precise_exceptions += run.stats.precise_exceptions
        if not run.contract_report.ok:
            result.contract_violations += 1
    return result


def run_suite(tests: Sequence[LitmusTest],
              config: Optional[RunConfig] = None) -> List[TestRun]:
    config = config or RunConfig()
    return [run_test(test, config) for test in tests]
