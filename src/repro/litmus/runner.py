"""Operational litmus runner (§6.3 methodology).

Each test is run many times on the functional engine with different
scheduler seeds.  The harness (:mod:`repro.litmus.harness`) runs each
test twice over: once clean and once with every test location's page
marked faulting through the EInject interface before the run — "to
inject bus errors on all load, store, and atomic instructions, which
generate many precise and imprecise exceptions that are silently
handled by the minimal handler".  :func:`run_test` executes one such
pass; ``config.inject_faults`` selects which.

Scheduler seeds are **derived per test** from a stable digest of the
test name, consistency model, and seed index (:func:`derive_seed`).
Because a test's seed sequence depends only on its own identity —
never on suite order, sharding, or which worker process runs it — a
parallel campaign (:mod:`repro.litmus.campaign`) produces outcome
sets bit-identical to a serial one.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from ..core.streams import DrainPolicy
from ..sim.config import ConsistencyModel, SystemConfig, small_config
from ..sim.multicore import MulticoreSystem
from .dsl import LitmusTest

Outcome = Tuple[Tuple[str, int], ...]

#: One documented campaign default, shared by :class:`RunConfig` and
#: the CLI ``--seeds`` flag.  20 seeds per pass (x2 passes with the
#: clean+injected default) explores enough interleavings for every
#: generated family to exhibit its spotlight relaxations while keeping
#: the full campaign interactive; raise it for soak runs.
DEFAULT_SEEDS = 20


def derive_seed(test_name: str, model: str, index: int) -> int:
    """Deterministic scheduler seed for run ``index`` of one test.

    A stable 64-bit digest of ``(test_name, model, index)`` — no
    dependence on Python's hash randomisation, suite order, or the
    process the test happens to run in.
    """
    key = f"{test_name}|{model}|{index}".encode()
    return int.from_bytes(
        hashlib.blake2b(key, digest_size=8).digest(), "big")


def derive_seeds(test_name: str, model: str, count: int) -> List[int]:
    """The full per-test seed schedule (see :func:`derive_seed`)."""
    return [derive_seed(test_name, model, i) for i in range(count)]


@dataclass
class RunConfig:
    """Knobs for one litmus campaign."""

    model: str = ConsistencyModel.PC
    seeds: int = DEFAULT_SEEDS
    inject_faults: bool = True
    #: Harness-level: also run (and judge) a clean pass per test when
    #: faults are injected.  Speed-sensitive callers set this False to
    #: halve campaign time (see :func:`repro.litmus.harness.check_test`).
    clean_pass: bool = True
    drain_policy: DrainPolicy = DrainPolicy.SAME_STREAM
    #: Exploration strategy for the operational cross-check
    #: (:mod:`repro.explore`): ``None`` disables it, else one of
    #: :data:`repro.explore.STRATEGIES` (``"dpor"`` recommended).
    explore: Optional[str] = None
    #: Run the static Shasha–Snir classifier before enumeration and,
    #: on a proven ``SC_EQUIVALENT`` verdict, enumerate (and explore)
    #: under SC instead of the relaxed reference — bit-identical
    #: results, far cheaper (:mod:`repro.staticanalysis`).
    prefilter: bool = False
    #: Run the static FSB taint analyzer per test under both drain
    #: policies and record the security verdicts in
    #: ``TestVerdict.taint_check`` (:mod:`repro.staticanalysis.taint`).
    #: A leak hazard is a report, never a conformance failure.
    taint: bool = False

    def system_config(self, cores: int) -> SystemConfig:
        return small_config(cores=cores, consistency=self.model)


@dataclass
class TestRun:
    """Observed behaviour of one test under one configuration."""

    test: LitmusTest
    model: str
    injected: bool
    outcomes: Set[Outcome] = field(default_factory=set)
    runs: int = 0
    imprecise_exceptions: int = 0
    precise_exceptions: int = 0
    contract_violations: int = 0


def run_test(test: LitmusTest, config: Optional[RunConfig] = None) -> TestRun:
    """Run one test ``config.seeds`` times; collect distinct outcomes."""
    config = config or RunConfig()
    # One compile for the whole schedule: MulticoreSystem never mutates
    # the Program (it copies initial memory and only reads instructions).
    program = test.to_program()
    result = TestRun(test=test, model=config.model,
                     injected=config.inject_faults)
    fault_addrs = [test.location_addr(loc) for loc in test.locations]
    system_config = config.system_config(program.cores)

    for seed in derive_seeds(test.name, config.model, config.seeds):
        system = MulticoreSystem(
            program,
            system_config,
            seed=seed,
            drain_policy=config.drain_policy,
        )
        if config.inject_faults:
            system.inject_faults(fault_addrs)
        run = system.run()
        result.outcomes.add(run.outcome)
        result.runs += 1
        result.imprecise_exceptions += run.stats.imprecise_exceptions
        result.precise_exceptions += run.stats.precise_exceptions
        if not run.contract_report.ok:
            result.contract_violations += 1
    return result


def run_suite(tests: Sequence[LitmusTest],
              config: Optional[RunConfig] = None) -> List[TestRun]:
    config = config or RunConfig()
    return [run_test(test, config) for test in tests]
