"""Schema-versioned corpus manifests (``repro.litmus.corpus/v1``).

A manifest is the durable identity of a generated corpus: the
generating config, the ordered per-test records (name, generation
attempt, structural digest, full metadata header), and the corpus
digest over the digest list.  Because generation is deterministic and
per-attempt independent (:func:`~repro.litmus.randgen.generator.
generate_one`), a consumer does not *trust* a manifest — it
**regenerates** each test from ``(config, attempt)`` and verifies the
digest matches, so a stale manifest (edited config, drifted generator,
corrupted entry) fails loudly with the first mismatching test named
(:class:`ManifestMismatchError`) instead of silently campaigning over
the wrong programs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from .emitter import GENERATOR_VERSION, GeneratedTest, TestHeader
from .generator import Corpus, RandGenConfig, generate_one

MANIFEST_SCHEMA = "repro.litmus.corpus/v1"


class ManifestError(ValueError):
    """The file is not a readable corpus manifest."""


class ManifestMismatchError(ManifestError):
    """Regeneration produced a different program than the manifest
    records."""


def manifest_dict(corpus: Corpus) -> Dict:
    """A corpus as its JSON-ready manifest payload."""
    return {
        "schema": MANIFEST_SCHEMA,
        "generator": GENERATOR_VERSION,
        "config": corpus.config.as_dict(),
        "count": len(corpus.tests),
        "attempts": corpus.attempts,
        "dedup_dropped": corpus.dedup_dropped,
        "corpus_digest": corpus.corpus_digest(),
        "tests": [
            {
                "attempt": _attempt_of(entry),
                "digest": entry.digest,
                "header": entry.header.as_dict(),
            }
            for entry in corpus.tests
        ],
    }


def _attempt_of(entry: GeneratedTest) -> int:
    # rg{seed}-{attempt:05d}-{template}
    return int(entry.header.name.split("-", 2)[1])


def write_manifest(path: Union[str, Path], corpus: Corpus) -> Dict:
    """Write the manifest; returns the payload dict."""
    payload = manifest_dict(corpus)
    Path(path).write_text(json.dumps(payload, indent=1, sort_keys=True))
    return payload


def read_manifest(path: Union[str, Path]) -> Dict:
    """Load and structurally validate one manifest file."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except ValueError as exc:
        raise ManifestError(f"{path}: not valid JSON ({exc})") from exc
    schema = payload.get("schema") if isinstance(payload, dict) else None
    if schema != MANIFEST_SCHEMA:
        raise ManifestError(
            f"{path}: not a corpus manifest "
            f"(schema {schema!r}, expected {MANIFEST_SCHEMA!r})")
    for key in ("config", "count", "corpus_digest", "tests"):
        if key not in payload:
            raise ManifestError(f"{path}: manifest missing {key!r}")
    if len(payload["tests"]) != payload["count"]:
        raise ManifestError(
            f"{path}: count says {payload['count']} but "
            f"{len(payload['tests'])} test entries present")
    return payload


def corpus_from_manifest(manifest: Union[Dict, str, Path],
                         verify: bool = True) -> Corpus:
    """Regenerate the corpus a manifest describes.

    With ``verify`` (the default) every regenerated program's digest —
    and the whole-corpus digest — must match the manifest;
    :class:`ManifestMismatchError` names the first divergent test
    otherwise.  ``verify=False`` skips the comparison (the programs
    are still regenerated from the config, there is nothing else to
    load), for callers that only need speed on a manifest they just
    wrote.
    """
    if not isinstance(manifest, dict):
        manifest = read_manifest(manifest)
    config = RandGenConfig.from_dict(manifest["config"])
    corpus = Corpus(config=config,
                    attempts=manifest.get("attempts", 0),
                    dedup_dropped=manifest.get("dedup_dropped", 0))
    for record in manifest["tests"]:
        entry = generate_one(config, record["attempt"])
        if verify:
            if entry.digest != record["digest"]:
                raise ManifestMismatchError(
                    f"test {record['header'].get('name', '?')!r} "
                    f"(attempt {record['attempt']}): regenerated digest "
                    f"{entry.digest[:16]}… does not match manifest "
                    f"{str(record['digest'])[:16]}… — manifest is stale "
                    f"or generator drifted")
            recorded = TestHeader.from_dict(record["header"])
            if recorded != entry.header:
                raise ManifestMismatchError(
                    f"test {recorded.name!r}: regenerated header "
                    f"differs from manifest ({entry.header.as_dict()} "
                    f"!= {recorded.as_dict()})")
        corpus.tests.append(entry)
    if verify and corpus.corpus_digest() != manifest["corpus_digest"]:
        raise ManifestMismatchError(
            "corpus digest mismatch after regeneration "
            f"({corpus.corpus_digest()[:16]}… != "
            f"{str(manifest['corpus_digest'])[:16]}…)")
    return corpus
