"""Seeded constrained-random corpus generation.

The determinism contract
------------------------

``generate_corpus(config)`` is a pure function of its
:class:`RandGenConfig`: the same config produces a bit-identical
corpus — same programs, same names, same digest list, same
:meth:`Corpus.corpus_digest` — on any machine, any process, any run.
Three mechanisms carry that:

* every random draw for attempt *i* comes from a private
  ``random.Random`` seeded by ``blake2b(f"{seed}|{i}")``
  (:func:`attempt_seed`) — attempts are independent, so any single
  test regenerates from its header's seed alone
  (:func:`generate_one`), which is what lets a manifest be *verified*
  instead of trusted;
* template selection indexes a stable catalogue order
  (:data:`~repro.litmus.randgen.templates.TEMPLATES`);
* dedup (:func:`~repro.litmus.generator.program_digest`) only ever
  *drops* attempts, never reorders survivors.

Corpora are therefore reproducible artifacts: a manifest
(:mod:`repro.litmus.randgen.manifest`) records ``(config, attempt,
digest)`` per test and any consumer can regenerate and re-verify the
exact programs.
"""

from __future__ import annotations

import hashlib
import json
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...obs.telemetry import current as _telemetry
from ..dsl import LitmusTest
from .constraints import AddressPool, RandGenError
from .emitter import GeneratedTest, emit
from .templates import ALL_FEATURES, eligible_templates

#: Attempt ceiling per requested test; with 8 templates over randomly
#: drawn fences/deps/values the duplicate rate stays low (~1–3 %), so
#: this is a runaway guard, not a tuning knob.
MAX_ATTEMPT_FACTOR = 50


def attempt_seed(seed: int, attempt: int) -> int:
    """Stable 64-bit sub-seed for one generation attempt."""
    key = f"{seed}|{attempt}".encode()
    return int.from_bytes(
        hashlib.blake2b(key, digest_size=8).digest(), "big")


@dataclass(frozen=True)
class RandGenConfig:
    """Knobs for one corpus (the ``repro gen`` flag set)."""

    seed: int = 0
    count: int = 100
    cores: Tuple[int, int] = (2, 4)
    features: Tuple[str, ...] = ALL_FEATURES

    def __post_init__(self) -> None:
        lo, hi = self.cores
        if not 2 <= lo <= hi <= 4:
            raise RandGenError(f"cores range {self.cores} not within 2..4")
        unknown = [f for f in self.features if f not in ALL_FEATURES]
        if unknown:
            raise RandGenError(
                f"unknown feature(s) {unknown}; known: "
                f"{list(ALL_FEATURES)}")
        if self.count < 0:
            raise RandGenError(f"negative count {self.count}")

    def as_dict(self) -> Dict:
        return {"seed": self.seed, "count": self.count,
                "cores": list(self.cores),
                "features": list(self.features)}

    @classmethod
    def from_dict(cls, raw: Dict) -> "RandGenConfig":
        return cls(seed=raw["seed"], count=raw["count"],
                   cores=tuple(raw["cores"]),
                   features=tuple(raw["features"]))


@dataclass
class Corpus:
    """One generated corpus plus its generation record."""

    config: RandGenConfig
    tests: List[GeneratedTest] = field(default_factory=list)
    attempts: int = 0
    dedup_dropped: int = 0
    wall_time_s: float = 0.0

    def __len__(self) -> int:
        return len(self.tests)

    def litmus_tests(self) -> List[LitmusTest]:
        return [entry.test for entry in self.tests]

    def digests(self) -> List[str]:
        return [entry.digest for entry in self.tests]

    def corpus_digest(self) -> str:
        """SHA-256 over the ordered digest list — one hex string that
        pins the whole corpus."""
        blob = json.dumps(self.digests(), separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def template_mix(self) -> Dict[str, int]:
        mix: Dict[str, int] = {}
        for entry in self.tests:
            key = entry.header.template
            mix[key] = mix.get(key, 0) + 1
        return mix

    def category_mix(self) -> Dict[str, int]:
        mix: Dict[str, int] = {}
        for entry in self.tests:
            mix[entry.header.category] = \
                mix.get(entry.header.category, 0) + 1
        return mix

    @property
    def throughput(self) -> float:
        """Tests emitted per second of generation wall time."""
        return len(self.tests) / self.wall_time_s \
            if self.wall_time_s else 0.0

    def report_block(self) -> Dict:
        """The campaign report's (v7+) ``corpus`` block."""
        return {
            "generator": self.tests[0].header.generator
            if self.tests else None,
            "seed": self.config.seed,
            "count": len(self.tests),
            "cores": list(self.config.cores),
            "features": list(self.config.features),
            "attempts": self.attempts,
            "dedup_dropped": self.dedup_dropped,
            "template_mix": self.template_mix(),
            "corpus_digest": self.corpus_digest(),
        }

    def summary(self) -> str:
        mix = ", ".join(f"{name}={count}" for name, count
                        in sorted(self.template_mix().items()))
        return (f"randgen corpus: {len(self.tests)} tests "
                f"(seed={self.config.seed} cores={self.config.cores[0]}-"
                f"{self.config.cores[1]} "
                f"features={','.join(self.config.features) or '-'})\n"
                f"  attempts={self.attempts} "
                f"dedup_dropped={self.dedup_dropped} "
                f"wall={self.wall_time_s:.2f}s "
                f"throughput={self.throughput:.0f} tests/s\n"
                f"  templates: {mix}\n"
                f"  corpus digest: {self.corpus_digest()}")


def _test_name(seed: int, attempt: int, template: str) -> str:
    return f"rg{seed}-{attempt:05d}-{template}"


def generate_one(config: RandGenConfig, attempt: int) -> GeneratedTest:
    """Regenerate the single test of one attempt — a pure function of
    ``(config.seed, config.cores, config.features, attempt)``."""
    sub_seed = attempt_seed(config.seed, attempt)
    rng = random.Random(sub_seed)
    lo, hi = config.cores
    templates = eligible_templates(lo, hi, config.features)
    if not templates:
        raise RandGenError(
            f"no eligible templates for cores={config.cores} "
            f"features={config.features}")
    template = templates[rng.randrange(len(templates))]
    cores = rng.randint(max(lo, template.min_cores),
                        min(hi, template.max_cores))
    alias = rng.uniform(*template.alias)
    pool = AddressPool(rng, size=6, alias=alias)
    built = template.build(rng, cores, pool, config.features)
    return emit(built, _test_name(config.seed, attempt, template.name),
                seed=sub_seed, template=template.name,
                features=config.features)


def generate_corpus(config: Optional[RandGenConfig] = None,
                    **kwargs) -> Corpus:
    """Generate a deduplicated corpus of ``config.count`` programs.

    Attempts run in index order; structural duplicates (equal
    :func:`~repro.litmus.generator.program_digest`) are dropped and
    counted, so the emitted corpus is 100 % unique and — because
    every program passed :func:`~repro.litmus.randgen.emitter.emit` —
    100 % lint-clean.  Generation throughput lands on the ambient
    telemetry context as a ``randgen.generate`` span plus
    ``randgen.*`` counters.
    """
    if config is None:
        config = RandGenConfig(**kwargs)
    elif kwargs:
        raise TypeError("pass a RandGenConfig or keyword knobs, not both")
    tel = _telemetry()
    started = time.perf_counter()
    corpus = Corpus(config=config)
    seen: set = set()
    limit = max(1, config.count) * MAX_ATTEMPT_FACTOR
    attempt = 0
    while len(corpus.tests) < config.count:
        if attempt >= limit:
            raise RandGenError(
                f"corpus did not converge: {len(corpus.tests)}/"
                f"{config.count} unique tests after {attempt} attempts "
                f"(template space too small for this config?)")
        entry = generate_one(config, attempt)
        attempt += 1
        if entry.digest in seen:
            corpus.dedup_dropped += 1
            continue
        seen.add(entry.digest)
        corpus.tests.append(entry)
    corpus.attempts = attempt
    corpus.wall_time_s = time.perf_counter() - started
    if tel.enabled:
        tel.record_span("randgen.generate", started, time.perf_counter(),
                        attrs={"seed": config.seed,
                               "count": len(corpus.tests),
                               "attempts": corpus.attempts})
        tel.counter("randgen.tests").inc(len(corpus.tests))
        tel.counter("randgen.attempts").inc(corpus.attempts)
        tel.counter("randgen.dedup_dropped").inc(corpus.dedup_dropped)
        tel.gauge("randgen.throughput").set(corpus.throughput)
    return corpus
