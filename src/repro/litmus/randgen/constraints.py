"""Constraint objects for constrained-random litmus generation.

Modeled on riescue's dtest framework, where a test declares its random
inputs up front as tagged constraints —

.. code-block:: none

    ;#random_data(name=data1, type=bits32, and_mask=0xfffffff0)
    ;#random_addr(name=lin1,  type=linear, size=0x1000)

— and the framework resolves them once per seed.  Our analogue works
over the symbolic litmus DSL: :class:`RandomData` draws store values
under a mask, and :class:`AddressPool` (the ``random_addr`` analogue)
hands out symbolic locations with **aliasing control** — a template
asks for a "probably fresh" or "probably shared" location and the pool
decides, so coherence interactions appear at a tunable rate instead of
by accident.

All draws go through one :class:`random.Random` instance seeded by the
generator (:mod:`repro.litmus.randgen.generator`), which is the whole
determinism story: Python guarantees the Mersenne Twister sequence for
a given seed across platforms and versions, so the same corpus seed
reproduces bit-identical programs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

#: Symbolic location names handed out by :class:`AddressPool`, in
#: allocation order.  The DSL maps each *sorted* distinct name onto
#: its own 4 KB page (:data:`repro.litmus.dsl.LOCATION_STRIDE`), so
#: any subset is automatically aligned and alias-free at the address
#: level (lint ``L005`` clean by construction); aliasing here is the
#: *deliberate* symbolic kind — two template slots drawing the same
#: name.
LOCATION_NAMES: Tuple[str, ...] = (
    "x", "y", "z", "a", "b", "c", "d", "e", "g", "h", "k", "m")


class RandGenError(ValueError):
    """A constraint or template could not be satisfied."""


@dataclass(frozen=True)
class RandomData:
    """``random_data`` analogue: a value constraint.

    Draws uniformly from ``[lo, hi]``; ``and_mask`` (riescue's
    ``and_mask=``) is applied afterwards, with a floor of ``lo`` so a
    mask can never produce the memory-initial value ``0`` (stores of
    the initial value would merge outcomes and hide relaxations).
    """

    name: str = "data"
    lo: int = 1
    hi: int = 8
    and_mask: Optional[int] = None

    def draw(self, rng: random.Random) -> int:
        value = rng.randint(self.lo, self.hi)
        if self.and_mask is not None:
            value &= self.and_mask
        return max(self.lo, value)


class AddressPool:
    """``random_addr`` analogue: symbolic locations with aliasing
    control.

    ``size`` bounds how many distinct locations the pool may allocate;
    ``alias`` is the probability that :meth:`draw` reuses an
    already-allocated location instead of allocating a fresh one.
    Templates that *need* disjoint locations call :meth:`fresh`;
    templates that want tunable coherence traffic call :meth:`draw`.
    """

    def __init__(self, rng: random.Random, size: int = 6,
                 alias: float = 0.0) -> None:
        if size < 1 or size > len(LOCATION_NAMES):
            raise RandGenError(
                f"address pool size {size} out of range 1.."
                f"{len(LOCATION_NAMES)}")
        if not 0.0 <= alias <= 1.0:
            raise RandGenError(f"alias probability {alias} not in [0, 1]")
        self._rng = rng
        self._size = size
        self._alias = alias
        self._allocated: List[str] = []

    @property
    def allocated(self) -> List[str]:
        """Locations allocated so far, in allocation order."""
        return list(self._allocated)

    def fresh(self) -> str:
        """A location distinct from every one allocated so far."""
        if len(self._allocated) >= self._size:
            raise RandGenError(
                f"address pool exhausted ({self._size} locations)")
        loc = LOCATION_NAMES[len(self._allocated)]
        self._allocated.append(loc)
        return loc

    def draw(self, exclude: Sequence[str] = ()) -> str:
        """A location, reusing an allocated one with probability
        ``alias`` (never one in ``exclude``)."""
        candidates = [loc for loc in self._allocated
                      if loc not in exclude]
        if candidates and (self._rng.random() < self._alias
                           or len(self._allocated) >= self._size):
            return self._rng.choice(candidates)
        try:
            return self.fresh()
        except RandGenError:
            if not candidates:
                raise
            return self._rng.choice(candidates)


def choose(rng: random.Random, options: Sequence):
    """``rng.choice`` with a loud error on an empty option set."""
    if not options:
        raise RandGenError("empty choice set")
    return rng.choice(list(options))


def maybe(rng: random.Random, probability: float) -> bool:
    return rng.random() < probability
