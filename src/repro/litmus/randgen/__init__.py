"""Constrained-random litmus generator (riescue-dtest style).

Scales the corpus from the structural generator's ~266 tests to
paper-scale (10k+) seeded campaigns: constraint objects
(:mod:`constraints`), a composable template catalogue
(:mod:`templates`), tagged-metadata emission with lint-clean
enforcement (:mod:`emitter`), deterministic corpus generation
(:mod:`generator`), and schema-versioned manifests
(:mod:`manifest`).  See ``docs/randgen.md``.
"""

from .constraints import AddressPool, RandGenError, RandomData
from .emitter import (ARCH, EXPECTED_VERDICT_SOURCE, GENERATOR_VERSION,
                      GeneratedTest, TestHeader, emit)
from .generator import (MAX_ATTEMPT_FACTOR, Corpus, RandGenConfig,
                        attempt_seed, generate_corpus, generate_one)
from .manifest import (MANIFEST_SCHEMA, ManifestError,
                       ManifestMismatchError, corpus_from_manifest,
                       manifest_dict, read_manifest, write_manifest)
from .templates import (ALL_FEATURES, TEMPLATES, BuiltProgram, Template,
                        eligible_templates)

__all__ = [
    "AddressPool", "RandGenError", "RandomData",
    "ARCH", "EXPECTED_VERDICT_SOURCE", "GENERATOR_VERSION",
    "GeneratedTest", "TestHeader", "emit",
    "MAX_ATTEMPT_FACTOR", "Corpus", "RandGenConfig", "attempt_seed",
    "generate_corpus", "generate_one",
    "MANIFEST_SCHEMA", "ManifestError", "ManifestMismatchError",
    "corpus_from_manifest", "manifest_dict", "read_manifest",
    "write_manifest",
    "ALL_FEATURES", "TEMPLATES", "BuiltProgram", "Template",
    "eligible_templates",
]
