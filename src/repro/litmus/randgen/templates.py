"""Composable constrained-random litmus templates.

Each template is a *skeleton* of a classic communication shape —
message passing, store buffering, load buffering, WRC/IRIW causality,
same-location coherence, atomic-centred PPO, and the exception suite's
faulting-store interactions — instantiated over 2–4 cores with
randomly drawn fences, address/data/control dependencies, atomics,
values, and location aliasing.  The riescue dtest framework does the
same thing one level down (assembly skeletons + ``random_data`` /
``random_addr`` resolution); here the skeletons emit symbolic
:class:`~repro.litmus.dsl.LitmusTest` ops so the whole verification
stack (axiomatic enumerator, DPOR explorer, static analyzer) applies
unchanged.

Lint-cleanliness is **by construction**, not by filtering:

* dependency flavours are only drawn when an earlier load/atomic in
  the same thread produces the register (``L001``);
* observation registers are allocated per ``(thread, slot)`` and never
  collide (``L003``);
* spotlights only name registers the template itself produced
  (``L002``) with values some write to that location emits — or 0,
  the initial value — so they are always feasible (``L006``);
* the DSL's sorted-location page layout keeps addresses aligned and
  injective for any location subset (``L005``).

The emitter (:mod:`repro.litmus.randgen.emitter`) still asserts a
clean lint on every program — no whitelist, a violation is a generator
bug and raises.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ...memmodel.events import FenceKind
from ..dsl import LitmusOutcome
from ..library import (CAT_BARRIER, CAT_CO, CAT_DEPS, CAT_FR, CAT_PO_LOC,
                       CAT_PPO, CAT_RFE)
from .constraints import AddressPool, RandomData, choose, maybe

#: Feature flags a corpus can enable (CLI ``--features``).
ALL_FEATURES: Tuple[str, ...] = ("fences", "deps", "atomics", "faults")

_FENCE_KINDS = (FenceKind.FULL, FenceKind.STORE_STORE,
                FenceKind.LOAD_LOAD, FenceKind.STORE_LOAD,
                FenceKind.LOAD_STORE)

_DATA = RandomData(name="data", lo=1, hi=8)


@dataclass
class BuiltProgram:
    """One instantiated skeleton, pre-:class:`LitmusTest`."""

    threads: List[List[tuple]]
    category: str
    spotlight: Optional[LitmusOutcome] = None
    faulting_locs: Tuple[str, ...] = ()


class _Thread:
    """Per-thread op accumulator with collision-free register names.

    Observation registers are named ``{tid}:x{10+slot}`` — already in
    the parser's register namespace, so plain-subset programs render
    to ``.litmus`` text and re-parse with identical names (the value
    registers ``x5``–``x9`` are reserved for the renderer's ``li``
    preloads).
    """

    def __init__(self, tid: int) -> None:
        self.tid = tid
        self.ops: List[tuple] = []
        self.produced: List[str] = []
        self._next = 10

    def reg(self) -> str:
        name = f"{self.tid}:x{self._next}"
        self._next += 1
        self.produced.append(name)
        return name

    def load(self, loc: str) -> str:
        reg = self.reg()
        self.ops.append(("R", loc, reg))
        return reg

    def store(self, loc: str, val: int) -> None:
        self.ops.append(("W", loc, val))

    def atomic(self, loc: str, val: int) -> str:
        reg = self.reg()
        self.ops.append(("A", loc, val, reg))
        return reg

    def fence(self, kind: FenceKind) -> None:
        self.ops.append(("F",) if kind is FenceKind.FULL
                        else ("F", kind))


# ----------------------------------------------------------------------
# Random structure helpers
# ----------------------------------------------------------------------
def _maybe_fence(rng: random.Random, thread: _Thread,
                 features: Sequence[str],
                 kinds: Sequence[FenceKind] = _FENCE_KINDS,
                 p: float = 0.75) -> bool:
    if "fences" in features and maybe(rng, p):
        thread.fence(choose(rng, kinds))
        return True
    return False


def _link_choices(rng: random.Random, features: Sequence[str],
                  dep_ok: bool, dep_flavours: Sequence[str]) -> str:
    """How to order two ops in one thread: a dependency flavour, a
    fence, or nothing (the base relaxed shape, kept rare)."""
    options: List[str] = []
    if dep_ok and "deps" in features:
        options.extend(dep_flavours)
        options.extend(dep_flavours)  # weight deps over fences
    if "fences" in features:
        options.extend(["fence", "fence"])
    options.append("plain")
    return choose(rng, options)


def _linked_store(rng: random.Random, thread: _Thread,
                  features: Sequence[str], loc: str, val: int,
                  dep_reg: Optional[str]) -> None:
    """Store ``val`` to ``loc``, ordered after ``dep_reg``'s producer
    by a random mechanism (dep flavour / fence / nothing)."""
    link = _link_choices(rng, features, dep_reg is not None,
                         ("data", "addr", "ctrl"))
    if link == "data":
        thread.ops.append(("Wdata", loc, val, dep_reg))
    elif link == "addr":
        thread.ops.append(("Waddr", loc, val, dep_reg))
    elif link == "ctrl":
        thread.ops.append(("Wctrl", loc, val, dep_reg))
    else:
        if link == "fence":
            thread.fence(choose(rng, (FenceKind.FULL,
                                      FenceKind.STORE_STORE)))
        thread.store(loc, val)


def _linked_load(rng: random.Random, thread: _Thread,
                 features: Sequence[str], loc: str,
                 dep_reg: Optional[str]) -> str:
    """Load from ``loc``, ordered after ``dep_reg``'s producer."""
    link = _link_choices(rng, features, dep_reg is not None,
                         ("addr", "ctrl"))
    if link == "addr":
        reg = thread.reg()
        thread.ops.append(("Raddr", loc, reg, dep_reg))
        return reg
    if link == "ctrl":
        reg = thread.reg()
        thread.ops.append(("Rctrl", loc, reg, dep_reg))
        return reg
    if link == "fence":
        thread.fence(choose(rng, (FenceKind.FULL, FenceKind.LOAD_LOAD)))
    return thread.load(loc)


def _refine_category(base: str, threads: List[List[tuple]]) -> str:
    """Bucket by the strongest ordering mechanism actually drawn, the
    way Table 6 groups the suite's tests."""
    kinds = {op[0] for ops in threads for op in ops}
    if base in (CAT_PO_LOC, CAT_PPO, CAT_CO):
        return base
    if kinds & {"Raddr", "Rctrl", "Waddr", "Wdata", "Wctrl"}:
        return CAT_DEPS
    if "F" in kinds:
        return CAT_BARRIER
    return base


def _extra_accesses(rng: random.Random, threads: List[_Thread],
                    pool: AddressPool, features: Sequence[str],
                    p: float = 0.3) -> None:
    """Sprinkle 0–2 benign extra accesses over random threads using
    the pool's aliasing draw — tunable coherence traffic on top of
    the skeleton.  Appended ops only (they never precede a dependency
    producer), plain loads/stores/atomics only, so every lint
    guarantee is preserved."""
    for _ in range(2):
        if not maybe(rng, p):
            continue
        thread = choose(rng, threads)
        loc = pool.draw()
        pick = rng.random()
        if "atomics" in features and pick < 0.2:
            thread.atomic(loc, _DATA.draw(rng))
        elif pick < 0.6:
            thread.store(loc, _DATA.draw(rng))
        else:
            thread.load(loc)


# ----------------------------------------------------------------------
# Templates
# ----------------------------------------------------------------------
def _mp_chain(rng: random.Random, cores: int, pool: AddressPool,
              features: Sequence[str]) -> BuiltProgram:
    """Message passing generalised to an N-core causal chain (MP at
    2 cores, ISA2/WRC-like relays beyond)."""
    data = pool.fresh()
    flags = [pool.fresh() for _ in range(cores - 1)]
    data_val = _DATA.draw(rng)
    threads = [_Thread(tid) for tid in range(cores)]

    writer = threads[0]
    writer.store(data, data_val)
    if maybe(rng, 0.25):
        writer.store(data, _DATA.draw(rng))  # CoWW on the data loc
    _maybe_fence(rng, writer, features,
                 (FenceKind.FULL, FenceKind.STORE_STORE))
    writer.store(flags[0], 1)

    spot: Dict[str, int] = {}
    for hop in range(1, cores - 1):
        relay = threads[hop]
        reg = relay.load(flags[hop - 1])
        spot[reg] = 1
        _linked_store(rng, relay, features, flags[hop], 1, reg)
    observer = threads[-1]
    reg = observer.load(flags[-1])
    spot[reg] = 1
    data_reg = _linked_load(rng, observer, features, data, reg)
    spot[data_reg] = 0

    _extra_accesses(rng, threads, pool, features)
    ops = [t.ops for t in threads]
    return BuiltProgram(threads=ops,
                        category=_refine_category(CAT_RFE, ops),
                        spotlight=LitmusOutcome(tuple(sorted(spot.items()))))


def _sb_ring(rng: random.Random, cores: int, pool: AddressPool,
             features: Sequence[str]) -> BuiltProgram:
    """Store buffering as an N-core ring: W x_i ; R x_{i+1}."""
    locs = [pool.fresh() for _ in range(cores)]
    threads = [_Thread(tid) for tid in range(cores)]
    spot: Dict[str, int] = {}
    for tid, thread in enumerate(threads):
        val = _DATA.draw(rng)
        if "atomics" in features and maybe(rng, 0.25):
            thread.atomic(locs[tid], val)
        else:
            thread.store(locs[tid], val)
        _maybe_fence(rng, thread, features,
                     (FenceKind.FULL, FenceKind.STORE_LOAD))
        reg = thread.load(locs[(tid + 1) % cores])
        spot[reg] = 0
    _extra_accesses(rng, threads, pool, features)
    ops = [t.ops for t in threads]
    return BuiltProgram(threads=ops,
                        category=_refine_category(CAT_FR, ops),
                        spotlight=LitmusOutcome(tuple(sorted(spot.items()))))


def _lb_ring(rng: random.Random, cores: int, pool: AddressPool,
             features: Sequence[str]) -> BuiltProgram:
    """Load buffering as an N-core ring: R x_i ; W x_{i+1}."""
    locs = [pool.fresh() for _ in range(cores)]
    vals = [_DATA.draw(rng) for _ in range(cores)]
    threads = [_Thread(tid) for tid in range(cores)]
    spot: Dict[str, int] = {}
    for tid, thread in enumerate(threads):
        reg = thread.load(locs[tid])
        # The all-observed outcome: each read sees its predecessor's
        # write around the ring.
        spot[reg] = vals[(tid - 1) % cores]
        _linked_store(rng, thread, features,
                      locs[(tid + 1) % cores], vals[tid], reg)
    ops = [t.ops for t in threads]
    return BuiltProgram(threads=ops,
                        category=_refine_category(CAT_DEPS, ops),
                        spotlight=LitmusOutcome(tuple(sorted(spot.items()))))


def _coherence(rng: random.Random, cores: int, pool: AddressPool,
               features: Sequence[str]) -> BuiltProgram:
    """Same-location shapes (CoRR/CoWW/CoRW/CoWR mixes) over one
    location; two cores keep the co order crisp."""
    loc = pool.fresh()
    threads = [_Thread(tid) for tid in range(2)]
    value = iter(range(1, 32))
    wrote = read = False
    for thread in threads:
        for _ in range(rng.randint(2, 3)):
            if maybe(rng, 0.5):
                thread.store(loc, next(value))
                wrote = True
            else:
                thread.load(loc)
                read = True
    if not wrote:
        threads[0].store(loc, next(value))
    if not read:
        threads[1].load(loc)
    ops = [t.ops for t in threads]
    return BuiltProgram(threads=ops, category=CAT_PO_LOC)


def _wrc(rng: random.Random, cores: int, pool: AddressPool,
         features: Sequence[str]) -> BuiltProgram:
    """Write-to-read causality through a middleman (3 cores)."""
    x, y = pool.fresh(), pool.fresh()
    xv, yv = _DATA.draw(rng), _DATA.draw(rng)
    threads = [_Thread(tid) for tid in range(3)]
    threads[0].store(x, xv)
    r0 = threads[1].load(x)
    _linked_store(rng, threads[1], features, y, yv, r0)
    r1 = threads[2].load(y)
    r2 = _linked_load(rng, threads[2], features, x, r1)
    _extra_accesses(rng, threads, pool, features)
    ops = [t.ops for t in threads]
    spot = LitmusOutcome(tuple(sorted({r0: xv, r1: yv, r2: 0}.items())))
    return BuiltProgram(threads=ops,
                        category=_refine_category(CAT_RFE, ops),
                        spotlight=spot)


def _iriw(rng: random.Random, cores: int, pool: AddressPool,
          features: Sequence[str]) -> BuiltProgram:
    """Independent reads of independent writes (4 cores)."""
    x, y = pool.fresh(), pool.fresh()
    xv, yv = _DATA.draw(rng), _DATA.draw(rng)
    threads = [_Thread(tid) for tid in range(4)]
    if "atomics" in features and maybe(rng, 0.25):
        threads[0].atomic(x, xv)
    else:
        threads[0].store(x, xv)
    threads[1].store(y, yv)
    ra = threads[2].load(x)
    rb = _linked_load(rng, threads[2], features, y, ra)
    rc = threads[3].load(y)
    rd = _linked_load(rng, threads[3], features, x, rc)
    ops = [t.ops for t in threads]
    spot = LitmusOutcome(tuple(sorted(
        {ra: xv, rb: 0, rc: yv, rd: 0}.items())))
    return BuiltProgram(threads=ops,
                        category=_refine_category(CAT_RFE, ops),
                        spotlight=spot)


def _atomic_mix(rng: random.Random, cores: int, pool: AddressPool,
                features: Sequence[str]) -> BuiltProgram:
    """Atomic-centred PPO shapes: AMO flags, AMO rings, AMO total
    order."""
    shape = choose(rng, ("mp-amo", "sb-amo", "amo-order"))
    threads = [_Thread(tid) for tid in range(2)]
    if shape == "mp-amo":
        data, flag = pool.fresh(), pool.fresh()
        dv = _DATA.draw(rng)
        threads[0].store(data, dv)
        _maybe_fence(rng, threads[0], features,
                     (FenceKind.FULL, FenceKind.STORE_STORE))
        threads[0].atomic(flag, 1)
        r0 = threads[1].load(flag)
        r1 = _linked_load(rng, threads[1], features, data, r0)
        spot = LitmusOutcome(tuple(sorted({r0: 1, r1: 0}.items())))
        category = CAT_PPO
    elif shape == "sb-amo":
        x, y = pool.fresh(), pool.fresh()
        threads[0].atomic(x, _DATA.draw(rng))
        _maybe_fence(rng, threads[0], features)
        ra = threads[0].load(y)
        threads[1].atomic(y, _DATA.draw(rng))
        _maybe_fence(rng, threads[1], features)
        rb = threads[1].load(x)
        spot = LitmusOutcome(tuple(sorted({ra: 0, rb: 0}.items())))
        category = CAT_PPO
    else:  # amo-order: AMOs to one location are totally ordered
        x = pool.fresh()
        threads[0].atomic(x, 1)
        threads[0].load(x)
        threads[1].atomic(x, 2)
        threads[1].load(x)
        spot = None
        category = CAT_PPO
    ops = [t.ops for t in threads]
    return BuiltProgram(threads=ops, category=category, spotlight=spot)


def _exception_suite(rng: random.Random, cores: int, pool: AddressPool,
                     features: Sequence[str]) -> BuiltProgram:
    """Faulting-store interactions (the FSB drain shapes).

    A store to a *faulting* location followed in program order by
    younger non-faulting stores — sometimes separated by an
    FSB-waiting fence or atomic, sometimes not (the split-stream
    hazard window) — with an observer reading the young stores before
    probing the faulting location.  The campaign injects faults on
    every test location (§6.3); the header's ``faulting_locs``
    records which location the *template* built the hazard around.
    """
    faulty = pool.fresh()
    young = [pool.fresh() for _ in range(rng.randint(1, 2))]
    threads = [_Thread(tid) for tid in range(max(2, cores))]
    spot: Dict[str, int] = {}

    faulter = threads[0]
    faulter.store(faulty, _DATA.draw(rng))
    gap = rng.random()
    if gap < 0.35 and "fences" in features:
        faulter.fence(choose(rng, (FenceKind.FULL,
                                   FenceKind.STORE_STORE)))
    elif gap < 0.5 and "atomics" in features:
        faulter.atomic(young[0], _DATA.draw(rng))
    vals = [_DATA.draw(rng) for _ in young]
    for loc, val in zip(young, vals):
        faulter.store(loc, val)

    observer = threads[1]
    reg = observer.load(young[-1])
    spot[reg] = vals[-1]
    probe = _linked_load(rng, observer, features, faulty, reg)
    spot[probe] = 0
    for extra in threads[2:]:
        # Additional cores contend on the faulting page: a second
        # faulting stream or another observer.
        if maybe(rng, 0.5):
            extra.store(faulty, _DATA.draw(rng))
            extra.store(young[0], _DATA.draw(rng))
        else:
            extra.load(faulty)
            extra.load(young[0])
    ops = [t.ops for t in threads]
    return BuiltProgram(threads=ops, category=CAT_CO,
                        spotlight=LitmusOutcome(tuple(sorted(spot.items()))),
                        faulting_locs=(faulty,))


@dataclass(frozen=True)
class Template:
    """One catalogue entry."""

    name: str
    min_cores: int
    max_cores: int
    build: Callable[[random.Random, int, AddressPool, Sequence[str]],
                    BuiltProgram]
    #: Feature flags that must be enabled for the template to be
    #: eligible (empty = always eligible; templates degrade
    #: gracefully when optional mechanisms are off).
    requires: Tuple[str, ...] = ()
    #: Aliasing probability range for the template's address pool.
    alias: Tuple[float, float] = (0.0, 0.25)


#: The template catalogue, in a stable order (selection draws index
#: positions from the seeded rng, so catalogue order is part of the
#: determinism contract — append new templates, never reorder).
TEMPLATES: Tuple[Template, ...] = (
    Template("mp-chain", 2, 4, _mp_chain),
    Template("sb-ring", 2, 4, _sb_ring),
    Template("lb-ring", 2, 4, _lb_ring),
    Template("coherence", 2, 2, _coherence, alias=(0.0, 0.0)),
    Template("wrc", 3, 3, _wrc),
    Template("iriw", 4, 4, _iriw),
    Template("atomic-mix", 2, 2, _atomic_mix, requires=("atomics",)),
    Template("exception-suite", 2, 3, _exception_suite,
             requires=("faults",)),
)


def eligible_templates(cores_lo: int, cores_hi: int,
                       features: Sequence[str]) -> List[Template]:
    """Catalogue entries usable under a core range + feature set."""
    out = []
    for template in TEMPLATES:
        if template.min_cores > cores_hi or template.max_cores < cores_lo:
            continue
        if any(f not in features for f in template.requires):
            continue
        out.append(template)
    return out
