"""Tagged-metadata emission for generated litmus programs.

Every generated program carries a riescue-style metadata header
(:class:`TestHeader`): arch, core count, enabled features, the
per-test seed that reproduces it, the template it came from, which
location the template built its faulting interaction around, and the
source of its expected verdict (the axiomatic enumerator — generated
programs have no hand-written oracle; the campaign *computes* the
reference and cross-checks the operational and static layers against
it).

:func:`emit` is the single choke point between a template's raw
thread lists and a corpus entry: it builds the
:class:`~repro.litmus.dsl.LitmusTest`, asserts a clean lint
(``L000``–``L006``, no whitelist — a finding is a generator bug and
raises :class:`~repro.litmus.randgen.constraints.RandGenError`;
``L007`` alone is exempt, it marks intentionally gadget-shaped
security tests, not malformed programs), and
stamps the structural :func:`~repro.litmus.generator.program_digest`
used for dedup and manifest verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..dsl import LitmusTest
from ..generator import program_digest
from .constraints import RandGenError
from .templates import BuiltProgram

#: Generator identity stamped into headers and manifests; bump on any
#: change that alters emitted programs for a fixed seed.
GENERATOR_VERSION = "repro.litmus.randgen/1"

ARCH = "rv64-rvwmo"
EXPECTED_VERDICT_SOURCE = "axiomatic-enumerator"


@dataclass(frozen=True)
class TestHeader:
    """Riescue-style tagged metadata for one generated test."""

    name: str
    cores: int
    seed: int
    template: str
    category: str
    features: Tuple[str, ...]
    faulting_locs: Tuple[str, ...] = ()
    arch: str = ARCH
    expected_verdict_source: str = EXPECTED_VERDICT_SOURCE
    generator: str = GENERATOR_VERSION

    def render(self) -> str:
        """The header as ``;#test.*`` tag lines (riescue dtest
        format), for embedding in emitted artifacts."""
        lines = [
            f";#test.name       {self.name}",
            f";#test.arch       {self.arch}",
            f";#test.cpus       {self.cores}",
            f";#test.seed       0x{self.seed:x}",
            f";#test.template   {self.template}",
            f";#test.category   {self.category}",
            f";#test.features   {' '.join(self.features) or '-'}",
            f";#test.expected   {self.expected_verdict_source}",
            f";#test.generator  {self.generator}",
        ]
        if self.faulting_locs:
            lines.append(
                f";#test.faulting   {' '.join(self.faulting_locs)}")
        return "\n".join(lines)

    def as_dict(self) -> Dict:
        return {
            "name": self.name,
            "arch": self.arch,
            "cores": self.cores,
            "seed": self.seed,
            "template": self.template,
            "category": self.category,
            "features": list(self.features),
            "faulting_locs": list(self.faulting_locs),
            "expected_verdict_source": self.expected_verdict_source,
            "generator": self.generator,
        }

    @classmethod
    def from_dict(cls, raw: Dict) -> "TestHeader":
        return cls(name=raw["name"], arch=raw["arch"],
                   cores=raw["cores"], seed=raw["seed"],
                   template=raw["template"], category=raw["category"],
                   features=tuple(raw["features"]),
                   faulting_locs=tuple(raw["faulting_locs"]),
                   expected_verdict_source=raw["expected_verdict_source"],
                   generator=raw["generator"])


@dataclass(frozen=True)
class GeneratedTest:
    """One corpus entry: the program, its header, and its digest."""

    test: LitmusTest = field(compare=False)
    header: TestHeader
    #: :func:`~repro.litmus.generator.program_digest` of ``test`` —
    #: the dedup key and the manifest's verification anchor.
    digest: str


def emit(built: BuiltProgram, name: str, seed: int, template: str,
         features: Tuple[str, ...]) -> GeneratedTest:
    """Seal one instantiated skeleton into a corpus entry.

    Raises :class:`RandGenError` if the program lints dirty — the
    catalogue's lint-cleanliness is by construction, so a finding
    here is a template bug, never something to whitelist away.
    """
    test = LitmusTest(name=name, category=built.category,
                      threads=built.threads, spotlight=built.spotlight)
    from ...staticanalysis.lint import lint_test
    # L007 (faulting-store data used as an address) is exempt here: it
    # flags a *security-relevant* gadget shape, not a malformed
    # program.  Templates are free to generate gadget-shaped tests —
    # they are precisely what the taint analyzer and the speculative
    # explorer want to exercise; the campaign reports them via
    # ``--taint`` instead of refusing to emit them.
    findings = lint_test(test, ignore=("L007",))
    if findings:
        raise RandGenError(
            f"generated program {name!r} (template {template}) is not "
            f"lint-clean: "
            + "; ".join(f.render() for f in findings))
    header = TestHeader(name=name, cores=len(built.threads), seed=seed,
                        template=template, category=built.category,
                        features=features,
                        faulting_locs=built.faulting_locs)
    return GeneratedTest(test=test, header=header,
                         digest=program_digest(test))
