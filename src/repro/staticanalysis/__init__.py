"""Static happens-before analysis over litmus programs.

Everything in this package works from program *structure* alone — no
rf/co enumeration, no operational exploration:

* :mod:`~repro.staticanalysis.cycles` — Shasha–Snir delay-set
  classifier: build the static conflict graph and decide per model
  whether any critical cycle can exist (``RELAXABLE``) or the test is
  provably ``SC_EQUIVALENT`` (its allowed set equals SC's, so the
  enumerator may run under SC instead — the campaign pre-filter).
* :mod:`~repro.staticanalysis.fences` — fence advisor: a minimal
  fence insertion covering every delay pair, emitting a patched test.
* :mod:`~repro.staticanalysis.drain` — split-stream hazard detector:
  the Figure 2a faulting-store → younger-store → remote-observer
  cycle shape, found without exploring the imprecise machine.
* :mod:`~repro.staticanalysis.lint` — well-formedness linter with a
  machine-readable rule catalogue (``repro lint``).
* :mod:`~repro.staticanalysis.taint` — FSB information-flow analyzer:
  can a faulting store's data reach a concurrent core's observable
  outcome before the OS apply point (transient FSB forwarding,
  tainted memory, dependency side channels)?  Verdicts per
  (test, drain policy): ``LEAK_FREE`` / ``LEAK_HAZARD`` with witness
  flow paths / ``UNKNOWN``.

Soundness contracts (enforced by ``tests/test_staticanalysis.py`` and
``tests/test_taint.py``): ``SC_EQUIVALENT`` implies bit-identical
allowed sets under the model and SC; a ``race-free`` drain verdict
implies :func:`repro.explore.check_drain_policy` finds no
split-stream race; a ``leak-free`` taint verdict implies the
exhaustive speculative taint explorer
(:func:`repro.explore.check_taint_policy`) finds no leaking schedule.
The converse directions are conservative — ``RELAXABLE``,
``possible-race``, and ``leak-hazard`` may be false alarms, never
silent misses.
"""

from .cycles import (Classification, CriticalCycle, Verdict, classify,
                     classify_events)
from .drain import (DrainHazardReport, DrainVerdict, HazardWitness,
                    detect_drain_hazards)
from .fences import FenceAdvice, FencePlacement, advise_fences
from .lint import (LINT_RULES, LintFinding, has_lint_errors, lint_file,
                   lint_test, lint_tests)
from .taint import TaintFlow, TaintReport, TaintVerdict, analyze_taint

__all__ = [
    "Classification", "CriticalCycle", "Verdict", "classify",
    "classify_events",
    "DrainHazardReport", "DrainVerdict", "HazardWitness",
    "detect_drain_hazards",
    "FenceAdvice", "FencePlacement", "advise_fences",
    "LINT_RULES", "LintFinding", "has_lint_errors", "lint_file",
    "lint_test", "lint_tests",
    "TaintFlow", "TaintReport", "TaintVerdict", "analyze_taint",
]
