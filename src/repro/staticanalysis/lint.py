"""Well-formedness linter for litmus programs (``repro lint``).

Rule catalogue (IDs are stable; ``docs/static_analysis.md`` carries
the prose versions):

=======  ========  ====================================================
ID       severity  finding
=======  ========  ====================================================
``L000`` error     ``.litmus`` file failed to parse
``L001`` error     dependency on a register with no earlier producer
                   (the DSL would silently compile it as zero)
``L002`` error     spotlight/``exists`` register never written by any op
``L003`` error     duplicate observation register (outcome keys collide)
``L004`` warning   dead initialisation: init entry for a location never
                   accessed or a thread that does not exist
``L005`` error     unaligned or aliasing location addresses
``L006`` error     unreachable final condition: spotlight expects a
                   value no write to the register's location produces
``L007`` warning   faulting-store data reachable as an address: a load
                   forwardable from a po-earlier same-location store
                   feeds an address dependency with no FSB barrier in
                   between (the transient leak-gadget shape)
=======  ========  ====================================================

``L001`` is the hard form of the historical implicit-zero behaviour of
``LitmusTest._compile_thread``: a dependency op whose ``dep`` register
has no earlier producing load/atomic reads a freshly allocated
zero-valued register *and* drops the axiomatic dependency edge.  No
library or generator test relies on it (asserted by the test suite),
so there is no whitelist — pass ``ignore=("L001",)`` explicitly to
accept such programs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Collection, Dict, Iterable, List, Optional, Set, Tuple

LINT_RULES: Dict[str, Tuple[str, str]] = {
    "L000": ("error", "litmus file failed to parse"),
    "L001": ("error", "dependency on never-written register"),
    "L002": ("error", "spotlight register never written"),
    "L003": ("error", "duplicate observation register"),
    "L004": ("warning", "dead initialisation"),
    "L005": ("error", "unaligned or aliasing location address"),
    "L006": ("error", "unreachable final condition"),
    "L007": ("warning", "faulting-store data used as an address"),
}

#: Op kinds that produce an observation register, with the tuple slot
#: holding the register name.
_PRODUCERS = {"R": 2, "Raddr": 2, "Rctrl": 2, "A": 3}
#: Op kinds carrying a dependency register in their last slot.
_DEP_OPS = ("Raddr", "Rctrl", "Waddr", "Wdata", "Wctrl")
#: Op kinds that write a value to their location (value in slot 2).
_WRITERS = ("W", "Waddr", "Wdata", "Wctrl", "A")
#: Plain stores — FSB-eligible when their page faults (atomics are
#: sanitization barriers, never gadget sources).
_STORES = ("W", "Waddr", "Wdata", "Wctrl")
#: Op kinds whose dependency register resolves to an *address*.
_ADDR_DEP_OPS = ("Raddr", "Waddr")


@dataclass(frozen=True)
class LintFinding:
    """One machine-readable lint finding."""

    rule: str
    severity: str
    test: str
    message: str
    thread: Optional[int] = None
    op: Optional[int] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "test": self.test,
            "message": self.message,
            "thread": self.thread,
            "op": self.op,
        }

    def render(self) -> str:
        where = ""
        if self.thread is not None:
            where = f" [T{self.thread}" + (
                f".{self.op}]" if self.op is not None else "]")
        return f"{self.severity.upper()} {self.rule} {self.test}{where}: " \
               f"{self.message}"


def has_lint_errors(findings: Iterable[LintFinding]) -> bool:
    return any(f.severity == "error" for f in findings)


def _finding(rule: str, test_name: str, message: str,
             thread: Optional[int] = None,
             op: Optional[int] = None) -> LintFinding:
    severity, _ = LINT_RULES[rule]
    return LintFinding(rule=rule, severity=severity, test=test_name,
                       message=message, thread=thread, op=op)


# ----------------------------------------------------------------------
# Individual rules
# ----------------------------------------------------------------------
def _check_dependencies(test) -> List[LintFinding]:
    """L001: every dependency register needs an earlier producer."""
    out = []
    for tid, ops in enumerate(test.threads):
        produced: Set[str] = set()
        for i, op in enumerate(ops):
            kind = op[0]
            if kind in _DEP_OPS:
                dep = op[3]
                if dep not in produced:
                    out.append(_finding(
                        "L001", test.name,
                        f"{kind} depends on register {dep!r} with no "
                        f"earlier producing load/atomic (would compile "
                        f"as implicit zero)", thread=tid, op=i))
            slot = _PRODUCERS.get(kind)
            if slot is not None:
                produced.add(op[slot])
    return out


def _register_sites(test) -> Dict[str, List[Tuple[int, int, tuple]]]:
    """Register name → [(thread, op index, op), ...] producing it."""
    sites: Dict[str, List[Tuple[int, int, tuple]]] = {}
    for tid, ops in enumerate(test.threads):
        for i, op in enumerate(ops):
            slot = _PRODUCERS.get(op[0])
            if slot is not None:
                sites.setdefault(op[slot], []).append((tid, i, op))
    return sites


def _check_spotlight(test, sites) -> List[LintFinding]:
    """L002 + L006 over the spotlight outcome."""
    out = []
    if test.spotlight is None:
        return out
    # Feasible values per location: 0 (the initial value — memory
    # inits are informational, see the parser docs) plus every value
    # some write to that location can produce.
    writes: Dict[str, Set[int]] = {}
    for ops in test.threads:
        for op in ops:
            if op[0] in _WRITERS:
                writes.setdefault(op[1], set()).add(op[2])
    for reg, expected in test.spotlight.as_tuple():
        produced_at = sites.get(reg, [])
        if not produced_at:
            out.append(_finding(
                "L002", test.name,
                f"spotlight register {reg!r} is never written by any "
                f"load or atomic"))
            continue
        if len(produced_at) > 1:
            continue  # L003 already fires; feasibility is ambiguous
        tid, i, op = produced_at[0]
        loc = op[1]
        feasible = {0} | writes.get(loc, set())
        if expected not in feasible:
            out.append(_finding(
                "L006", test.name,
                f"spotlight expects {reg!r}={expected} but location "
                f"{loc!r} only ever holds {sorted(feasible)}",
                thread=tid, op=i))
    return out


def _check_duplicate_registers(test, sites) -> List[LintFinding]:
    """L003: a register produced twice collides in outcome tuples."""
    out = []
    for reg, produced_at in sorted(sites.items()):
        if len(produced_at) > 1:
            where = ", ".join(f"T{tid}.{i}" for tid, i, _ in produced_at)
            out.append(_finding(
                "L003", test.name,
                f"observation register {reg!r} written at {where}; "
                f"outcome keys collide"))
    return out


def _check_init(test) -> List[LintFinding]:
    """L004: init entries that cannot affect the test."""
    out = []
    init = getattr(test, "init", None)
    if not init:
        return out
    locations = set(test.locations)
    for key in sorted(init, key=str):
        if isinstance(key, tuple):
            tid, reg = key
            if tid >= len(test.threads):
                out.append(_finding(
                    "L004", test.name,
                    f"init {tid}:{reg} targets thread {tid} but the "
                    f"test has {len(test.threads)} thread(s)"))
        elif key not in locations:
            out.append(_finding(
                "L004", test.name,
                f"init sets location {key!r} which no thread accesses"))
    return out


def _check_addresses(test) -> List[LintFinding]:
    """L005: the symbolic address map must be injective and aligned."""
    out = []
    from ..litmus.dsl import LOCATION_STRIDE
    seen: Dict[int, str] = {}
    for loc in test.locations:
        addr = test.location_addr(loc)
        if addr % LOCATION_STRIDE:
            out.append(_finding(
                "L005", test.name,
                f"location {loc!r} address 0x{addr:x} is not "
                f"0x{LOCATION_STRIDE:x}-aligned (EInject poisoning is "
                f"page-granular)"))
        if addr in seen:
            out.append(_finding(
                "L005", test.name,
                f"locations {seen[addr]!r} and {loc!r} alias address "
                f"0x{addr:x}"))
        seen[addr] = loc
    return out


def _check_fsb_gadget(test) -> List[LintFinding]:
    """L007: a store's data, forwardable to a po-later load, later
    feeds an address.

    Every campaign location is faultable (EInject poisons whole
    pages), so any store is a potential FSB taint source.  The flagged
    shape — ``W(x,v); R(x,r); Raddr/Waddr(..., dep=r)`` with no FSB
    barrier between the store and the address use — is exactly the
    transmit channel :func:`repro.staticanalysis.taint.analyze_taint`
    reports: while the store is pending pre-apply, the forwarded value
    is transient state, and using it as an address transmits it.
    A warning, not an error: the program is well-formed, just
    security-relevant.
    """
    from .taint import _barrier_indices
    out = []
    for tid, ops in enumerate(test.threads):
        barriers = set(_barrier_indices(ops))
        stores: Dict[str, List[int]] = {}    # loc -> store indices
        tainted: Dict[str, int] = {}         # reg -> source store index
        for k, op in enumerate(ops):
            kind = op[0]
            if kind in _ADDR_DEP_OPS:
                src = tainted.get(op[3])
                if src is not None and not any(
                        src < b < k for b in barriers):
                    out.append(_finding(
                        "L007", test.name,
                        f"{kind} uses register {op[3]!r} as an "
                        f"address; it can hold data forwarded from "
                        f"the store at T{tid}.{src}, transient while "
                        f"that store is pending in the FSB "
                        f"(leak-gadget shape; see "
                        f"docs/static_analysis.md)", thread=tid, op=k))
            slot = _PRODUCERS.get(kind)
            if slot is not None:
                same_loc = stores.get(op[1], ())
                if kind != "A" and same_loc:
                    tainted[op[slot]] = max(same_loc)
                else:  # no forwardable store, or sanitizing atomic
                    tainted.pop(op[slot], None)
            if kind in _STORES:
                stores.setdefault(op[1], []).append(k)
    return out


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def lint_test(test, ignore: Collection[str] = ()) -> List[LintFinding]:
    """All findings for one :class:`~repro.litmus.dsl.LitmusTest`,
    ordered by rule.  ``ignore`` drops whole rule IDs."""
    sites = _register_sites(test)
    findings = (_check_dependencies(test)
                + _check_spotlight(test, sites)
                + _check_duplicate_registers(test, sites)
                + _check_init(test)
                + _check_addresses(test)
                + _check_fsb_gadget(test))
    findings.sort(key=lambda f: (f.rule, f.thread or 0, f.op or 0))
    return [f for f in findings if f.rule not in ignore]


def lint_tests(tests, ignore: Collection[str] = ()) -> List[LintFinding]:
    out: List[LintFinding] = []
    for test in tests:
        out.extend(lint_test(test, ignore=ignore))
    return out


def lint_file(path, ignore: Collection[str] = ()) -> List[LintFinding]:
    """Parse and lint one ``.litmus`` file; parse failures become
    ``L000`` findings instead of raising."""
    from pathlib import Path

    from ..litmus.parser import LitmusParseError, parse_litmus
    path = Path(path)
    try:
        test = parse_litmus(path.read_text())
    except LitmusParseError as exc:
        if "L000" in ignore:
            return []
        return [_finding("L000", path.name, str(exc))]
    return lint_test(test, ignore=ignore)
