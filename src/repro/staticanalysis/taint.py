"""Static FSB taint analysis: can a faulting store's data leak?

The FSB holds retired-but-faulting stores pre-apply — data that the
architectural memory state never shows until S_OS, but that the
microarchitecture keeps on the store-to-load path.  Following the
Store-to-Leak Forwarding model, a concurrent core may *transiently*
observe another core's pre-apply FSB entry through a pending load
(squashed on resolve, but long enough to encode into a side channel),
and any core may observe tainted data architecturally once a derived
value reaches memory.  This module decides, from program structure
alone, whether such a flow exists — the static counterpart of the
exhaustive :class:`repro.explore.spectaint.SpecTaintMachine` ground
truth, judged to zero false negatives by ``tests/test_taint.py``.

Taint lattice: each value carries a set of *origins* ``(core, op)`` —
the faulting stores its data derives from; the empty set is ⊥ and all
transfer functions are monotone (set union), so the fixpoint below
terminates.  Flows tracked:

* **source** — a store to a faulting location taints its own entry.
* **forwarding** (po) — a load may forward from any program-order
  earlier same-location store on its own core (buffer or pre-apply
  FSB), inheriting the entry's origins.
* **memory** — a tainted *non-faulting* store can drain to memory
  tainted (always under split-stream; under same-stream when the
  core's own FSB happens to be empty — a cross-core relay — so the
  analyzer conservatively keeps the edge for both policies).  A
  faulting store reaches memory only through its apply, which clears
  its *own* origin: only inherited (derived) origins survive as
  residue.
* **dependencies** — a ``Wdata`` store inherits its producer
  register's origins; address/control dependencies do not propagate
  into the value but *transmit* (below).
* **fsb-spec** — a cross-core load of a tainted store's location may
  observe the entry transiently while it sits pre-apply in the FSB
  (faulting locations always route there; tainted non-faulting
  stores reach the observer through memory instead, so the candidate
  pair is flagged either way).  Writer- or reader-side fences do
  **not** close this channel: a fence only waits for its *own* core's
  FSB, and the transient window exists while the entry is pre-apply
  on the other core.

Sanitization barriers: FSB-waiting fences (``FULL``/``w,w``/``w,r``)
and atomics cannot complete until every program-order earlier faulting
store of their core has been applied — and the apply point clears that
store's origin machine-wide.  Crossing a barrier therefore kills all
*own-core* origins of an intra-core flow; foreign origins survive
(a local fence cannot resolve another core's fault).  Atomics
additionally sanitize their own intake (they wait for the local FSB
before reading).

Leak sinks (any one ⇒ ``LEAK_HAZARD`` with a witness flow path):

* **observe** — a cross-core load or atomic of a tainted store's
  location whose observed origins include a core other than the
  reader (the cross-core candidate pairs come from the Shasha–Snir
  conflict edges of :mod:`repro.staticanalysis.cycles`).
* **transmit** — an address or control dependency consumes a
  still-live tainted register while another core exists: the
  dependent access's cache/branch footprint is a classic transient
  gadget (lint rule L007 flags the single-instruction shape of this).

Verdicts mirror :mod:`repro.staticanalysis.drain`: ``LEAK_FREE`` is
the sound direction (no flow exists ⇒ the exhaustive taint explorer
finds no leaking schedule); ``LEAK_HAZARD`` is conservative (a flow
exists statically but value coincidences may hide it dynamically);
``UNKNOWN`` means the analyzer declined and callers must fall back to
exploration.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from enum import Enum
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..memmodel.events import EventKind
from ..memmodel.imprecise import DrainPolicy
from ..memmodel.relations import StaticRelations
from .cycles import _SUPPORTED_KINDS, conflict_edges
from .drain import _FSB_BARRIER_FENCES

#: Op kinds the analyzer understands; anything else ⇒ ``UNKNOWN``.
_STORE_OPS = frozenset(("W", "Waddr", "Wdata", "Wctrl"))
_LOAD_OPS = frozenset(("R", "Raddr", "Rctrl"))
_KNOWN_OPS = _STORE_OPS | _LOAD_OPS | frozenset(("A", "F"))

#: Dependency-bearing op → (dependency kind, dep-register position).
_DEP_OPS = {"Raddr": "addr", "Rctrl": "ctrl", "Waddr": "addr",
            "Wdata": "data", "Wctrl": "ctrl"}

Origin = Tuple[int, int]


class TaintVerdict(Enum):
    """Static information-flow outcome for one (test, policy)."""

    LEAK_FREE = "leak-free"
    LEAK_HAZARD = "leak-hazard"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class TaintFlow:
    """One witnessing flow: taint source → … → observable sink."""

    #: ``"fsb-spec"`` (transient cross-core FSB forward), ``"memory"``
    #: (tainted data reached memory architecturally), or
    #: ``"transmit"`` (address/control-dependency side channel).
    channel: str
    #: ``(core, op index)`` of the originating faulting store.
    source: Tuple[int, int]
    #: ``(core, op index)`` of the observing/transmitting op.
    sink: Tuple[int, int]
    #: Human-readable steps, source first.
    steps: Tuple[str, ...]

    def describe(self) -> str:
        return " => ".join(self.steps)

    def as_dict(self) -> Dict[str, object]:
        return {
            "channel": self.channel,
            "source": list(self.source),
            "sink": list(self.sink),
            "steps": list(self.steps),
        }


@dataclass
class TaintReport:
    """Static taint verdict for one (test, policy, fault set)."""

    test_name: str
    policy: str
    faulting_locs: Tuple[str, ...]
    verdict: TaintVerdict
    flows: Tuple[TaintFlow, ...] = ()
    reason: str = ""
    wall_time_s: float = 0.0

    @property
    def leak_free(self) -> bool:
        return self.verdict is TaintVerdict.LEAK_FREE

    def as_dict(self) -> Dict[str, object]:
        return {
            "test": self.test_name,
            "policy": self.policy,
            "faulting_locs": list(self.faulting_locs),
            "verdict": self.verdict.value,
            "flows": [f.as_dict() for f in self.flows],
            "reason": self.reason,
            "wall_time_s": round(self.wall_time_s, 6),
        }


# ----------------------------------------------------------------------
# Program structure helpers
# ----------------------------------------------------------------------
def _op_loc(op) -> Optional[str]:
    return op[1] if op[0] in _STORE_OPS | _LOAD_OPS | {"A"} else None


def _op_reg(op) -> Optional[str]:
    """Destination register of a value-producing op."""
    if op[0] in _LOAD_OPS:
        return op[2]
    if op[0] == "A":
        return op[3]
    return None


def _op_dep(op) -> Optional[Tuple[str, str]]:
    """``(dependency kind, dep register)`` for dependency-bearing ops."""
    dkind = _DEP_OPS.get(op[0])
    if dkind is None:
        return None
    return dkind, op[3]


def _barrier_indices(ops) -> Tuple[int, ...]:
    """Op indices acting as FSB sanitization barriers on this core."""
    out = []
    for idx, op in enumerate(ops):
        if op[0] == "F":
            kind = op[1] if len(op) > 1 else None
            if kind is None or kind in _FSB_BARRIER_FENCES:
                out.append(idx)
        elif op[0] == "A":
            out.append(idx)
    return tuple(out)


def _kill_across(origins: FrozenSet[Origin], tid: int,
                 barriers: Tuple[int, ...], lo: int,
                 hi: int) -> FrozenSet[Origin]:
    """Origins surviving a po hop ``lo → hi`` on core ``tid``: a
    crossed barrier has waited for every own faulting store issued
    before it, whose applies cleared the own-core origins; foreign
    origins are untouched (a local fence cannot resolve a remote
    fault)."""
    if any(lo < bx < hi for bx in barriers):
        return frozenset(o for o in origins if o[0] != tid)
    return origins


def _producer_index(ops, reg: str, before: int) -> Optional[int]:
    """Latest op before ``before`` producing ``reg``, or ``None``."""
    for idx in range(before - 1, -1, -1):
        if _op_reg(ops[idx]) == reg:
            return idx
    return None


def _describe_op(tid: int, idx: int, op) -> str:
    loc = _op_loc(op)
    return f"C{tid}:{idx}:{op[0]}({loc})" if loc else f"C{tid}:{idx}:{op[0]}"


# ----------------------------------------------------------------------
# The analyzer
# ----------------------------------------------------------------------
def analyze_taint(test, policy: DrainPolicy = DrainPolicy.SAME_STREAM,
                  faulting_locs: Optional[Iterable[str]] = None
                  ) -> TaintReport:
    """Statically decide whether ``test`` can leak a faulting store's
    data to a concurrent observer before the apply point, with stores
    to ``faulting_locs`` faulting (default: every location).

    Mirrors :func:`repro.explore.spectaint.check_taint_policy`'s
    interface without exploring.  Never raises: failures yield an
    ``UNKNOWN`` verdict.  The verdict is policy-independent by design
    (the transient FSB channel exists under both policies; only the
    witness channel differs — see ``docs/static_analysis.md``), but
    the policy is recorded so reports stay comparable with the
    dynamic ground truth.
    """
    started = time.perf_counter()
    locs = tuple(faulting_locs) if faulting_locs is not None \
        else tuple(test.locations)
    try:
        faulting = {test.location_addr(loc) for loc in locs}
        threads = test.threads
        ncores = len(threads)
        unknown_ops = sorted({op[0] for ops in threads for op in ops
                              if op[0] not in _KNOWN_OPS})
        if unknown_ops:
            return TaintReport(
                test_name=test.name, policy=policy.value,
                faulting_locs=locs, verdict=TaintVerdict.UNKNOWN,
                reason=f"unsupported ops: {unknown_ops}",
                wall_time_s=time.perf_counter() - started)

        loc_addr = {loc: test.location_addr(loc)
                    for ops in threads for op in ops
                    for loc in ((_op_loc(op),) if _op_loc(op) else ())}
        barriers = tuple(_barrier_indices(ops) for ops in threads)

        # Cross-core observer candidates come from the Shasha–Snir
        # conflict edges (same address, different cores, one a write).
        threads_ev, deps = test.to_events()
        events = [e for th in threads_ev for e in th]
        if any(e.kind not in _SUPPORTED_KINDS for e in events):
            return TaintReport(
                test_name=test.name, policy=policy.value,
                faulting_locs=locs, verdict=TaintVerdict.UNKNOWN,
                reason="unsupported event kinds",
                wall_time_s=time.perf_counter() - started)
        static = StaticRelations(events, extra_ppo=deps)
        observer_pairs: Set[Tuple[Origin, Origin]] = set()
        for (a, b) in conflict_edges(static):
            ea, eb = static.by_uid[a], static.by_uid[b]
            if (ea.kind is EventKind.STORE
                    and eb.kind in (EventKind.LOAD, EventKind.ATOMIC)):
                observer_pairs.add(((ea.core, ea.index),
                                    (eb.core, eb.index)))

        # Monotone fixpoint over origin sets (tiny programs: iterate
        # the transfer functions until stable).
        store_origins: Dict[Origin, FrozenSet[Origin]] = {}
        reg_origins: Dict[Origin, FrozenSet[Origin]] = {}
        paths: Dict[Tuple[str, int, int], Tuple[str, ...]] = {}

        def mem_origins(t: int, s: int) -> FrozenSet[Origin]:
            """Origins a store's data can carry *into memory*: its own
            origin is cleared by the apply that commits a faulting
            store, so only inherited residue survives there."""
            origins = store_origins.get((t, s), frozenset())
            op = threads[t][s]
            if loc_addr[op[1]] in faulting:
                return origins - {(t, s)}
            return origins

        changed = True
        while changed:
            changed = False
            for tid, ops in enumerate(threads):
                for idx, op in enumerate(ops):
                    kind = op[0]
                    if kind in _STORE_OPS:
                        origins: Set[Origin] = set()
                        path: Tuple[str, ...] = ()
                        if loc_addr[op[1]] in faulting:
                            origins.add((tid, idx))
                            path = (f"{_describe_op(tid, idx, op)} "
                                    "faulting store [taint source]",)
                        dep = _op_dep(op)
                        if dep and dep[0] == "data":
                            p = _producer_index(ops, dep[1], idx)
                            if p is not None:
                                inherited = _kill_across(
                                    reg_origins.get((tid, p),
                                                    frozenset()),
                                    tid, barriers[tid], p, idx)
                                if inherited and not path:
                                    path = paths.get(
                                        ("reg", tid, p), ()) + (
                                        f"{_describe_op(tid, idx, op)} "
                                        "carries tainted data",)
                                origins |= inherited
                        frozen = frozenset(origins)
                        if frozen - store_origins.get((tid, idx),
                                                      frozenset()):
                            store_origins[(tid, idx)] = frozen | \
                                store_origins.get((tid, idx),
                                                  frozenset())
                            paths.setdefault(("store", tid, idx), path)
                            changed = True
                    elif kind in _LOAD_OPS or kind == "A":
                        origins = set()
                        path = ()
                        addr = loc_addr[op[1]]
                        for (t, s), so in sorted(store_origins.items()):
                            sop = threads[t][s]
                            if loc_addr[sop[1]] != addr:
                                continue
                            if t == tid and s < idx and kind != "A":
                                # own-core store-to-load forwarding
                                survived = _kill_across(
                                    so, tid, barriers[tid], s, idx)
                            elif t != tid:
                                # via memory (atomics sanitize their
                                # own-core residue: they wait for the
                                # local FSB before reading)
                                survived = mem_origins(t, s)
                                if kind == "A":
                                    survived = frozenset(
                                        o for o in survived
                                        if o[0] != tid)
                            else:
                                continue
                            if survived and not path:
                                path = paths.get(("store", t, s),
                                                 ()) + (
                                    f"{_describe_op(tid, idx, op)} "
                                    "reads tainted value",)
                            origins |= survived
                        frozen = frozenset(origins)
                        if frozen - reg_origins.get((tid, idx),
                                                    frozenset()):
                            reg_origins[(tid, idx)] = frozen | \
                                reg_origins.get((tid, idx), frozenset())
                            paths.setdefault(("reg", tid, idx), path)
                            changed = True

        # -- leak sinks ------------------------------------------------
        flows: List[TaintFlow] = []
        seen: Set[Tuple] = set()
        for (src, snk) in sorted(observer_pairs):
            (t, s), (i, l) = src, snk
            so = store_origins.get((t, s), frozenset())
            if not so:
                continue
            rop = threads[i][l]
            if rop[0] == "A":
                effective = frozenset(o for o in mem_origins(t, s)
                                      if o[0] != i)
            else:
                effective = so
            if not any(o[0] != i for o in effective):
                continue
            sop = threads[t][s]
            faults = loc_addr[sop[1]] in faulting
            channel = "fsb-spec" if faults and rop[0] != "A" \
                else "memory"
            root = min(o for o in effective if o[0] != i)
            key = ("observe", src, snk)
            if key in seen:
                continue
            seen.add(key)
            how = ("transiently observes pre-apply FSB entry"
                   if channel == "fsb-spec"
                   else "observes tainted memory")
            flows.append(TaintFlow(
                channel=channel, source=root, sink=snk,
                steps=paths.get(("store", t, s), ()) + (
                    f"{_describe_op(i, l, rop)} {how} of "
                    f"{_describe_op(t, s, sop)}",)))
        if ncores > 1:
            for tid, ops in enumerate(threads):
                for idx, op in enumerate(ops):
                    dep = _op_dep(op)
                    if not dep or dep[0] == "data":
                        continue
                    p = _producer_index(ops, dep[1], idx)
                    if p is None:
                        continue
                    live = _kill_across(
                        reg_origins.get((tid, p), frozenset()),
                        tid, barriers[tid], p, idx)
                    if not live:
                        continue
                    key = ("transmit", tid, idx)
                    if key in seen:
                        continue
                    seen.add(key)
                    flows.append(TaintFlow(
                        channel="transmit", source=min(live),
                        sink=(tid, idx),
                        steps=paths.get(("reg", tid, p), ()) + (
                            f"{_describe_op(tid, idx, op)} uses "
                            f"tainted register as {dep[0]} "
                            "[side-channel transmit]",)))

        verdict = (TaintVerdict.LEAK_HAZARD if flows
                   else TaintVerdict.LEAK_FREE)
        return TaintReport(
            test_name=test.name, policy=policy.value, faulting_locs=locs,
            verdict=verdict, flows=tuple(flows),
            wall_time_s=time.perf_counter() - started)
    except Exception as exc:  # sound fallback: never claim leak-free
        return TaintReport(
            test_name=test.name,
            policy=getattr(policy, "value", str(policy)),
            faulting_locs=locs, verdict=TaintVerdict.UNKNOWN,
            reason=f"{type(exc).__name__}: {exc}",
            wall_time_s=time.perf_counter() - started)
