"""Shasha–Snir delay-set classification of litmus programs.

A relaxed model M can only disagree with SC on a program if some
*critical cycle* exists: a cycle alternating intra-core program-order
segments with cross-core conflict edges (two accesses to the same
address, at least one a write) in which at least one segment's
endpoint pair is **not** preserved by M.  This module builds that
graph statically — from the event structure alone, before any rf/co
enumeration — and classifies each test:

* ``SC_EQUIVALENT`` — no delay pair closes a cycle, so every
  M-consistent candidate is SC-consistent and the allowed sets are
  bit-identical.  The campaign pre-filter exploits this by
  enumerating under SC (far fewer ghb edges to order) instead of M.
* ``RELAXABLE`` — at least one delay pair sits on a conflict cycle;
  the witnessing cycles are reported (and drive the fence advisor).
  This direction is conservative: a ``RELAXABLE`` verdict does *not*
  guarantee the allowed sets differ.
* ``UNKNOWN`` — the analyzer declined (unexpected event kinds or an
  internal error); callers must fall back to full enumeration.

Soundness of ``SC_EQUIVALENT`` (the argument is spelled out in
``docs/static_analysis.md``): take an M-consistent, SC-inconsistent
candidate.  Coherence forces internal rf/co/fr onto program order, so
a minimal SC-ghb cycle normalises to po segments joined by external
communication edges — a cycle in our conflict graph.  A segment whose
endpoint pair is in the transitive closure of
``ppo_M ∪ fences ∪ deps`` is an M-ghb path; a same-address
store→load segment (the one hole every model here leaves open, for
forwarding) is bypassed by coherence: ``w →po_loc→ r`` forces
``rf(r) ∈ {w} ∪ co-after(w)``, so the fr edge leaving ``r`` targets a
write co-after ``w`` and ``w →co→ w'`` replaces the segment inside
M-ghb.  If every segment is preserved or bypassed the whole cycle
lands in M-ghb — contradicting M-consistency.  Hence a cycle requires
a *delay pair*: a po pair neither closed under preserved order nor a
same-address store→load.  No delay pair on a conflict cycle ⇒ no
critical cycle ⇒ allowed(M) = allowed(SC).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..memmodel.axioms import MemoryModel, get_model
from ..memmodel.events import Event, EventKind
from ..memmodel.relations import Edge, StaticRelations, transitive_closure

#: Event kinds the classifier reasons about; anything else (future
#: protocol events, OS stores) flips the verdict to ``UNKNOWN``.
_SUPPORTED_KINDS = frozenset((EventKind.LOAD, EventKind.STORE,
                              EventKind.ATOMIC, EventKind.FENCE))


class Verdict(Enum):
    """Classifier outcome for one (test, model) pair."""

    SC_EQUIVALENT = "sc-equivalent"
    RELAXABLE = "relaxable"
    UNKNOWN = "unknown"


def describe_event(ev: Event) -> str:
    """Stable human-readable event label for witnesses/reports."""
    if ev.is_fence:
        return f"C{ev.core}:{ev.index}:F.{ev.fence.value}"
    kind = {EventKind.LOAD: "R", EventKind.STORE: "W",
            EventKind.ATOMIC: "A"}.get(ev.kind, ev.kind.value)
    addr = f"0x{ev.addr:x}" if ev.addr is not None else "?"
    return f"C{ev.core}:{ev.index}:{kind}({addr})"


@dataclass(frozen=True)
class CriticalCycle:
    """One witnessing cycle: uids in order, edge kind after each node.

    ``nodes[0] → nodes[1]`` is always the delay pair (edge kind
    ``"delay"``); subsequent edges are ``"po"`` (same core) or
    ``"cf"`` (cross-core conflict).  The cycle closes from the last
    node back to ``nodes[0]``.
    """

    nodes: Tuple[int, ...]
    edges: Tuple[str, ...]
    delay: Edge

    def describe(self, by_uid: Dict[int, Event]) -> str:
        parts = []
        for uid, kind in zip(self.nodes, self.edges):
            parts.append(f"{describe_event(by_uid[uid])} -{kind}->")
        return " ".join(parts) + f" {describe_event(by_uid[self.nodes[0]])}"


@dataclass
class Classification:
    """Static verdict for one (test, model) pair."""

    test_name: str
    model_name: str
    verdict: Verdict
    #: Po pairs not preserved by the model *and* closing a conflict
    #: cycle — the pairs a fence must cover.
    delay_pairs: Tuple[Edge, ...] = ()
    #: One minimal witnessing cycle per delay pair.
    cycles: Tuple[CriticalCycle, ...] = ()
    #: Why the verdict is ``UNKNOWN`` (empty otherwise).
    reason: str = ""
    wall_time_s: float = 0.0
    cycle_descriptions: Tuple[str, ...] = field(default=(), repr=False)

    @property
    def sc_equivalent(self) -> bool:
        return self.verdict is Verdict.SC_EQUIVALENT

    def as_dict(self) -> Dict[str, object]:
        return {
            "test": self.test_name,
            "model": self.model_name,
            "verdict": self.verdict.value,
            "delay_pairs": len(self.delay_pairs),
            "cycles": list(self.cycle_descriptions),
            "reason": self.reason,
            "wall_time_s": round(self.wall_time_s, 6),
        }


# ----------------------------------------------------------------------
# Graph construction
# ----------------------------------------------------------------------
def po_chain_adjacency(static: StaticRelations) -> Dict[int, Set[int]]:
    """Immediate program-order successors per event (transitivity is
    recovered by path reachability, so the chain suffices)."""
    adj: Dict[int, Set[int]] = {e.uid: set() for e in static.events}
    for core in static.cores:
        evs = static.core_events(core)
        for a, b in zip(evs, evs[1:]):
            adj[a.uid].add(b.uid)
    return adj


def conflict_edges(static: StaticRelations) -> Set[Edge]:
    """Symmetric cross-core conflict pairs: same address, at least one
    write, different cores.  Initial writes (core -1) are excluded —
    they have no incoming edges and cannot sit on a cycle."""
    by_addr: Dict[int, List[Event]] = {}
    for e in static.events:
        if e.core >= 0 and e.is_memory_access and e.addr is not None:
            by_addr.setdefault(e.addr, []).append(e)
    edges: Set[Edge] = set()
    for accesses in by_addr.values():
        for i, a in enumerate(accesses):
            for b in accesses[i + 1:]:
                if a.core == b.core:
                    continue
                if not (a.is_write or b.is_write):
                    continue
                edges.add((a.uid, b.uid))
                edges.add((b.uid, a.uid))
    return edges


def conflict_graph(static: StaticRelations) -> Dict[int, Set[int]]:
    """The Shasha–Snir graph: po chains plus conflict edges."""
    adj = po_chain_adjacency(static)
    for a, b in conflict_edges(static):
        adj.setdefault(a, set()).add(b)
    return adj


def preserved_order(static: StaticRelations,
                    model: MemoryModel) -> Set[Edge]:
    """Transitive closure of every order M guarantees intra-core:
    the model's ppo, fence-induced edges, and dependency edges."""
    base = (set(static.ppo(model)) | set(static.fence_edges)
            | set(static.extra_ppo))
    return transitive_closure(base)


def delay_candidates(static: StaticRelations,
                     model: MemoryModel) -> List[Edge]:
    """Memory-access po pairs M does not preserve.

    Same-address store→load pairs are exempt even when absent from
    ppo (every model here drops them for forwarding): the coherence
    bypass in the module docstring shows no critical cycle can hinge
    on one.  The exemption requires the later event to be a *pure*
    load — an atomic's write half can exit a cycle through co, which
    the bypass does not cover, so atomics stay candidates unless the
    model orders them.
    """
    preserved = preserved_order(static, model)
    out: List[Edge] = []
    for (a, b) in static.po_edges:
        if (a, b) in preserved:
            continue
        ea, eb = static.by_uid[a], static.by_uid[b]
        if not (ea.is_memory_access and eb.is_memory_access):
            continue
        if (ea.is_write and eb.kind is EventKind.LOAD
                and ea.addr == eb.addr):
            continue  # coherence bypass (same-address W -> R)
        out.append((a, b))
    return out


def _shortest_return_path(adj: Dict[int, Set[int]], src: int,
                          dst: int) -> Optional[List[int]]:
    """BFS path ``src → … → dst`` (inclusive), or ``None``."""
    if src == dst:
        return [src]
    parents: Dict[int, int] = {src: src}
    frontier = [src]
    while frontier:
        nxt: List[int] = []
        for node in frontier:
            for succ in adj.get(node, ()):
                if succ in parents:
                    continue
                parents[succ] = node
                if succ == dst:
                    path = [dst]
                    while path[-1] != src:
                        path.append(parents[path[-1]])
                    path.reverse()
                    return path
                nxt.append(succ)
        frontier = nxt
    return None


def _witness_cycle(static: StaticRelations, delay: Edge,
                   path: List[int]) -> CriticalCycle:
    """Assemble the cycle ``a -delay-> b -…-> a`` from the BFS path
    (which runs ``b → … → a``), labelling each edge po or cf."""
    a, _ = delay
    nodes = [a] + path[:-1]  # path ends at a, which closes the cycle
    edges = ["delay"]
    for x, y in zip(path, path[1:]):
        same_core = (static.by_uid[x].core == static.by_uid[y].core)
        edges.append("po" if same_core else "cf")
    return CriticalCycle(nodes=tuple(nodes), edges=tuple(edges),
                         delay=delay)


# ----------------------------------------------------------------------
# Classification
# ----------------------------------------------------------------------
def classify_events(threads: Sequence[Sequence[Event]],
                    deps: Sequence[Edge],
                    model: MemoryModel,
                    test_name: str = "?") -> Classification:
    """Classify an already-compiled event structure (see
    :func:`classify` for the :class:`LitmusTest` entry point)."""
    started = time.perf_counter()
    try:
        events = [e for th in threads for e in th]
        unsupported = [e for e in events
                       if e.kind not in _SUPPORTED_KINDS]
        if unsupported:
            return Classification(
                test_name=test_name, model_name=model.name,
                verdict=Verdict.UNKNOWN,
                reason=f"unsupported event kinds: "
                       f"{sorted({e.kind.value for e in unsupported})}",
                wall_time_s=time.perf_counter() - started)
        static = StaticRelations(events, extra_ppo=deps)
        adj = conflict_graph(static)
        delays: List[Edge] = []
        cycles: List[CriticalCycle] = []
        for (a, b) in sorted(delay_candidates(static, model)):
            path = _shortest_return_path(adj, b, a)
            if path is None:
                continue
            delays.append((a, b))
            cycles.append(_witness_cycle(static, (a, b), path))
        verdict = Verdict.RELAXABLE if delays else Verdict.SC_EQUIVALENT
        return Classification(
            test_name=test_name, model_name=model.name, verdict=verdict,
            delay_pairs=tuple(delays), cycles=tuple(cycles),
            cycle_descriptions=tuple(c.describe(static.by_uid)
                                     for c in cycles),
            wall_time_s=time.perf_counter() - started)
    except Exception as exc:  # sound fallback: never guess
        return Classification(
            test_name=test_name, model_name=model.name,
            verdict=Verdict.UNKNOWN,
            reason=f"{type(exc).__name__}: {exc}",
            wall_time_s=time.perf_counter() - started)


def classify(test, model) -> Classification:
    """Classify a :class:`~repro.litmus.dsl.LitmusTest` under a model
    (instance or name).  Never raises: analysis failures produce an
    ``UNKNOWN`` verdict so callers can fall back to enumeration."""
    if isinstance(model, str):
        model = get_model(model)
    try:
        threads, deps = test.to_events()
    except Exception as exc:
        return Classification(
            test_name=getattr(test, "name", "?"), model_name=model.name,
            verdict=Verdict.UNKNOWN,
            reason=f"{type(exc).__name__}: {exc}")
    return classify_events(threads, deps, model,
                           test_name=getattr(test, "name", "?"))
