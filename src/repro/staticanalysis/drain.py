"""Static split-stream hazard detection (the Figure 2a shape).

Under the split-stream drain policy only *faulting* stores route
through the FSB; younger non-faulting stores keep draining straight
to memory and race the OS applies.  The only program order the policy
can break, relative to the clean TSO/PC machine, is therefore

    faulting store  →po→  younger non-faulting store

with no intervening barrier (on the imprecise machine, ``FULL`` /
``w,w`` / ``w,r`` fences and atomics wait for the FSB to drain, so
they restore the order; ``r,*`` fences and loads do not wait).  Such
a broken pair is *observable* — can produce an outcome the clean
program's PC model forbids — only when a remote observer closes the
Shasha–Snir cycle: a conflict-graph path from the younger store back
to the faulting store (in Figure 2a: flag store → remote flag read
→po→ remote data read → data store).

The detector enumerates exactly these pairs and checks the return
path on the static conflict graph.  Verdicts:

* ``RACE_FREE`` — **sound**: no hazard pair exists, so split-stream
  explores only clean-PC-allowed outcomes for this program/fault set
  (enforced against :func:`repro.explore.check_drain_policy` by
  tests: no false negatives).
* ``POSSIBLE_RACE`` — a hazard pair with an observer path exists.
  Conservative: exploration may still find no violating outcome
  (e.g. the observed values coincide); this is the documented
  false-positive direction and is a report, never an error.
* ``UNKNOWN`` — the analyzer declined (unexpected structure).

Same-stream is statically ``RACE_FREE`` for every program: once an
entry routes, *all* of the core's drains route through the same FIFO
stream, so memory sees its stores in program order (the PR 3
exploration theorem, re-derived here without exploring).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Optional, Tuple

from ..memmodel.events import Event, EventKind, FenceKind
from ..memmodel.imprecise import DrainPolicy
from ..memmodel.relations import StaticRelations
from .cycles import (_SUPPORTED_KINDS, _shortest_return_path,
                     conflict_graph, describe_event)

#: Fence kinds that wait for the FSB on the imprecise machine
#: (see ``ImpreciseMachine._fence_ready``): anything ordering stores.
_FSB_BARRIER_FENCES = frozenset((FenceKind.FULL, FenceKind.STORE_STORE,
                                 FenceKind.STORE_LOAD))


class DrainVerdict(Enum):
    RACE_FREE = "race-free"
    POSSIBLE_RACE = "possible-race"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class HazardWitness:
    """One statically detected split-stream hazard."""

    #: Uid of the store to a faulting address (routed to the FSB).
    faulting_store: int
    #: Uid of the younger non-faulting store that overtakes it.
    younger_store: int
    #: Conflict-graph path younger store → … → faulting store closing
    #: the cycle (uids, endpoints included).
    observer_path: Tuple[int, ...]
    description: str = ""
    #: Compilation-independent mirrors of the uids above (uids are
    #: process-global per ``to_events()`` call, so callers that
    #: recompile the test cannot resolve them).
    faulting_addr: Optional[int] = None
    younger_addr: Optional[int] = None
    observer_cores: Tuple[int, ...] = ()

    def as_dict(self) -> Dict[str, object]:
        return {
            "faulting_store": self.faulting_store,
            "younger_store": self.younger_store,
            "observer_path": list(self.observer_path),
            "faulting_addr": self.faulting_addr,
            "younger_addr": self.younger_addr,
            "observer_cores": list(self.observer_cores),
            "description": self.description,
        }


@dataclass
class DrainHazardReport:
    """Static drain-policy verdict for one (test, policy, faults)."""

    test_name: str
    policy: str
    faulting_locs: Tuple[str, ...]
    verdict: DrainVerdict
    hazards: Tuple[HazardWitness, ...] = ()
    reason: str = ""
    wall_time_s: float = 0.0

    @property
    def race_free(self) -> bool:
        return self.verdict is DrainVerdict.RACE_FREE

    def as_dict(self) -> Dict[str, object]:
        return {
            "test": self.test_name,
            "policy": self.policy,
            "faulting_locs": list(self.faulting_locs),
            "verdict": self.verdict.value,
            # Every detected pair, structured (addresses, observer
            # cores, return path) — not just the prose descriptions.
            "hazards": [h.as_dict() for h in self.hazards],
            "reason": self.reason,
            "wall_time_s": round(self.wall_time_s, 6),
        }


def _barrier_between(evs: List[Event], i: int, j: int) -> bool:
    """Does any event strictly between positions ``i`` and ``j`` of a
    core's event list restore the drain order?  Store-waiting fences
    and atomics both stall until the FSB is empty."""
    for ev in evs[i + 1:j]:
        if ev.is_fence and ev.fence in _FSB_BARRIER_FENCES:
            return True
        if ev.kind is EventKind.ATOMIC:
            return True
    return False


def detect_drain_hazards(
        test,
        policy: DrainPolicy = DrainPolicy.SPLIT_STREAM,
        faulting_locs: Optional[Iterable[str]] = None
) -> DrainHazardReport:
    """Statically check one program/policy/fault-set combination.

    Mirrors :func:`repro.explore.check_drain_policy`'s interface
    (``faulting_locs`` defaults to every location) without exploring.
    Never raises: failures yield an ``UNKNOWN`` verdict.
    """
    started = time.perf_counter()
    locs = tuple(faulting_locs) if faulting_locs is not None \
        else tuple(test.locations)
    try:
        faulting = {test.location_addr(loc) for loc in locs}
        if policy is DrainPolicy.SAME_STREAM:
            return DrainHazardReport(
                test_name=test.name, policy=policy.value,
                faulting_locs=locs, verdict=DrainVerdict.RACE_FREE,
                reason="same-stream drains FIFO through one stream",
                wall_time_s=time.perf_counter() - started)

        threads, deps = test.to_events()
        events = [e for th in threads for e in th]
        if any(e.kind not in _SUPPORTED_KINDS for e in events):
            return DrainHazardReport(
                test_name=test.name, policy=policy.value,
                faulting_locs=locs, verdict=DrainVerdict.UNKNOWN,
                reason="unsupported event kinds",
                wall_time_s=time.perf_counter() - started)
        static = StaticRelations(events, extra_ppo=deps)
        adj = conflict_graph(static)

        hazards: List[HazardWitness] = []
        for core in static.cores:
            evs = static.core_events(core)
            for i, w1 in enumerate(evs):
                if w1.kind is not EventKind.STORE or w1.addr not in faulting:
                    continue
                for j in range(i + 1, len(evs)):
                    ev = evs[j]
                    if (ev.kind is not EventKind.STORE
                            or ev.addr in faulting):
                        continue  # routed stores keep FIFO order
                    if _barrier_between(evs, i, j):
                        break  # this and all later stores are ordered
                    path = _shortest_return_path(adj, ev.uid, w1.uid)
                    if path is None:
                        continue
                    hazards.append(HazardWitness(
                        faulting_store=w1.uid, younger_store=ev.uid,
                        observer_path=tuple(path),
                        faulting_addr=w1.addr, younger_addr=ev.addr,
                        observer_cores=tuple(static.by_uid[u].core
                                             for u in path),
                        description=(
                            f"{describe_event(w1)} routed to FSB; "
                            f"{describe_event(ev)} drains past it; "
                            "observed via "
                            + " -> ".join(describe_event(static.by_uid[u])
                                          for u in path))))
        verdict = (DrainVerdict.POSSIBLE_RACE if hazards
                   else DrainVerdict.RACE_FREE)
        return DrainHazardReport(
            test_name=test.name, policy=policy.value, faulting_locs=locs,
            verdict=verdict, hazards=tuple(hazards),
            wall_time_s=time.perf_counter() - started)
    except Exception as exc:  # sound fallback: never claim race-free
        return DrainHazardReport(
            test_name=test.name, policy=getattr(policy, "value",
                                                str(policy)),
            faulting_locs=locs, verdict=DrainVerdict.UNKNOWN,
            reason=f"{type(exc).__name__}: {exc}",
            wall_time_s=time.perf_counter() - started)
