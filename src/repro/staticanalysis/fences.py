"""Fence advisor: minimal fence insertion covering every delay pair.

Given a ``RELAXABLE`` classification, every delay pair ``(a, b)`` must
be ordered for the test to become SC-equivalent under the model.  A
fence inserted at gap ``g`` of a thread (before the op at index ``g``)
covers the pair iff ``a.index < g <= b.index`` and the fence's
direction orders ``a`` before and ``b`` after.  Minimising insertions
is then interval point cover per thread, which the classic greedy
solves exactly: scan intervals by right endpoint, place a fence at the
right endpoint of the first uncovered interval.

The fence kind per placement is the weakest direction that orders all
pairs assigned to it (``w,w`` / ``w,r`` / ``r,w`` / ``r,r``), widening
to a full fence when pairs disagree.  Atomics count as stores on
either side (every directional fence that orders stores orders them).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Set, Tuple

from ..memmodel.axioms import MemoryModel, get_model
from ..memmodel.events import Event, FenceKind
from .cycles import Classification, Verdict, classify

#: (earlier side is write?, later side is write?) → directional fence.
_DIRECTIONAL = {
    (True, True): FenceKind.STORE_STORE,
    (True, False): FenceKind.STORE_LOAD,
    (False, True): FenceKind.LOAD_STORE,
    (False, False): FenceKind.LOAD_LOAD,
}


@dataclass(frozen=True)
class FencePlacement:
    """Insert a fence of ``kind`` before op ``gap`` of thread
    ``thread`` (``gap`` indexes the *original* op list)."""

    thread: int
    gap: int
    kind: FenceKind

    def as_op(self) -> tuple:
        if self.kind is FenceKind.FULL:
            return ("F",)
        return ("F", self.kind)


@dataclass
class FenceAdvice:
    """Advisor output: placements plus the patched test."""

    test_name: str
    model_name: str
    classification: Classification
    placements: Tuple[FencePlacement, ...]
    patched: "object"  # LitmusTest (kept untyped to avoid an import cycle)
    #: Re-classification of the patched test — ``SC_EQUIVALENT``
    #: whenever the input classified cleanly (asserted by tests).
    patched_verdict: Verdict

    @property
    def needed(self) -> bool:
        return bool(self.placements)

    def as_dict(self) -> Dict[str, object]:
        return {
            "test": self.test_name,
            "model": self.model_name,
            "verdict": self.classification.verdict.value,
            "placements": [
                {"thread": p.thread, "gap": p.gap,
                 "kind": p.kind.value}
                for p in self.placements],
            "patched_verdict": self.patched_verdict.value,
        }


def _pair_direction(a: Event, b: Event) -> Tuple[bool, bool]:
    """(earlier orders as write?, later orders as write?).

    A pure load only responds to load-ordering fence sides; anything
    that writes (stores, atomics) responds to store-ordering sides.
    """
    return (a.is_write, b.is_write)


def _kind_for(directions: Set[Tuple[bool, bool]]) -> FenceKind:
    if len(directions) == 1:
        return _DIRECTIONAL[next(iter(directions))]
    return FenceKind.FULL


def _cover_thread(intervals: List[Tuple[int, int, Tuple[bool, bool]]],
                  thread: int) -> List[FencePlacement]:
    """Greedy interval point cover; intervals are
    ``(lo_gap, hi_gap, direction)`` with gaps inclusive."""
    placements: List[FencePlacement] = []
    chosen: List[Tuple[int, Set[Tuple[bool, bool]]]] = []
    for lo, hi, direction in sorted(intervals, key=lambda iv: iv[1]):
        for gap, directions in chosen:
            if lo <= gap <= hi:
                directions.add(direction)
                break
        else:
            chosen.append((hi, {direction}))
    for gap, directions in chosen:
        placements.append(FencePlacement(thread=thread, gap=gap,
                                         kind=_kind_for(directions)))
    return placements


def advise_fences(test, model) -> FenceAdvice:
    """Compute a minimal fence insertion making ``test`` classify
    ``SC_EQUIVALENT`` under ``model``, and emit the patched test.

    A test that already classifies ``SC_EQUIVALENT`` (or ``UNKNOWN``)
    gets no placements and is returned unchanged.
    """
    if isinstance(model, str):
        model = get_model(model)
    # Compile once: uids are process-global, so the classification and
    # the gap mapping must share one event structure.
    try:
        threads, deps = test.to_events()
    except Exception:
        threads, deps = [], []
    from .cycles import classify_events
    cls = classify_events(threads, deps, model, test_name=test.name)
    if cls.verdict is not Verdict.RELAXABLE:
        return FenceAdvice(test_name=test.name, model_name=model.name,
                           classification=cls, placements=(),
                           patched=test, patched_verdict=cls.verdict)

    by_uid: Dict[int, Event] = {e.uid: e for th in threads for e in th}
    per_thread: Dict[int, List[Tuple[int, int, Tuple[bool, bool]]]] = {}
    for (a_uid, b_uid) in cls.delay_pairs:
        a, b = by_uid[a_uid], by_uid[b_uid]
        per_thread.setdefault(a.core, []).append(
            (a.index + 1, b.index, _pair_direction(a, b)))

    placements: List[FencePlacement] = []
    for thread, intervals in sorted(per_thread.items()):
        placements.extend(_cover_thread(intervals, thread))
    placements.sort(key=lambda p: (p.thread, p.gap))

    patched_threads = [list(ops) for ops in test.threads]
    # Insert from the highest gap down so earlier gaps stay valid.
    for p in sorted(placements, key=lambda p: (p.thread, -p.gap)):
        patched_threads[p.thread].insert(p.gap, p.as_op())
    patched = replace(test, name=f"{test.name}+advised",
                      threads=patched_threads)
    patched_cls = classify(patched, model)
    return FenceAdvice(test_name=test.name, model_name=model.name,
                       classification=cls,
                       placements=tuple(placements), patched=patched,
                       patched_verdict=patched_cls.verdict)
