#!/usr/bin/env python3
"""The paper's Example 2: Midgard-style late address translation.

In a Midgard system the cache hierarchy is indexed by an intermediate
address space: the lightweight VMA-level translation runs before the
hierarchy, and the heavyweight page-level translation runs only on an
LLC miss.  A store can therefore pass its front-side checks, *retire*
into the store buffer, miss the hierarchy — and only then discover
that its page-level translation faults.  The exception arrives after
retirement: the imprecise case.

This walk-through builds that system from library pieces:

1. a page table in which half the application's pages are lazily
   allocated (mapped but not present) and some are swapped out;
2. a :class:`MidgardLateTranslation` fault source at the LLC boundary;
3. a two-core producer/consumer program whose stores hit those pages;
4. the FSB/handler machinery resolving each late fault and applying
   the stores, audited by the Table 5 contract checker.

Run:  python examples/midgard_scenario.py
"""

from repro.sim import isa
from repro.sim.config import ConsistencyModel, small_config
from repro.sim.devices.faultsource import MidgardLateTranslation
from repro.sim.multicore import MulticoreSystem
from repro.sim.os.pagefault import DEMAND_PAGING_CYCLES, LAZY_ALLOC_CYCLES
from repro.sim.program import make_program
from repro.sim.vm.pagetable import PageTable

HEAP = 0x400000          # four heap pages
FLAG = 0x800000          # synchronisation flag (always resident)


def build_address_space() -> PageTable:
    page_table = PageTable()
    page_table.map_page(FLAG, present=True)
    page_table.map_page(HEAP + 0x0000, present=True)
    page_table.map_page(HEAP + 0x1000, present=False)           # lazy
    page_table.map_page(HEAP + 0x2000, present=False, swapped=True)
    page_table.map_page(HEAP + 0x3000, present=False)           # lazy
    return page_table


def main() -> None:
    page_table = build_address_space()
    midgard = MidgardLateTranslation(page_table)

    # Producer writes one word into each heap page, then raises the
    # flag; consumer waits on the flag (spin modelled as a load) and
    # reads the words back.
    producer = [
        isa.store(HEAP + 0x0000, value=10),
        isa.store(HEAP + 0x1008, value=11),   # lazy page: late fault
        isa.store(HEAP + 0x2010, value=12),   # swapped page: late fault
        isa.store(HEAP + 0x3018, value=13),   # lazy page: late fault
        isa.fence(),
        isa.store(FLAG, value=1),
    ]
    consumer = [
        isa.load(1, FLAG, label="flag"),
        isa.load(2, HEAP + 0x0000, label="w0"),
        isa.load(3, HEAP + 0x1008, label="w1"),
        isa.load(4, HEAP + 0x2010, label="w2"),
        isa.load(5, HEAP + 0x3018, label="w3"),
    ]
    program = make_program([producer, consumer])

    print("=== Midgard late-translation scenario ===")
    print(f"heap pages: 1 resident, 2 lazy "
          f"(~{LAZY_ALLOC_CYCLES} cy each to resolve), "
          f"1 swapped (~{DEMAND_PAGING_CYCLES:,} cy of IO)\n")

    outcomes = set()
    total_imprecise = 0
    total_precise = 0
    for seed in range(60):
        system = MulticoreSystem(
            program, small_config(2, ConsistencyModel.PC), seed=seed,
            fault_source=MidgardLateTranslation(build_address_space()))
        result = system.run()
        outcomes.add(result.outcome)
        total_imprecise += result.stats.imprecise_exceptions
        total_precise += result.stats.precise_exceptions
        assert result.contract_report.ok
        for i, value in enumerate((10, 11, 12, 13)):
            addr = [HEAP, HEAP + 0x1008, HEAP + 0x2010,
                    HEAP + 0x3018][i]
            assert result.memory_value(addr) == value

    print(f"runs                : 60")
    print(f"imprecise exceptions: {total_imprecise} "
          f"(stores faulting after retirement)")
    print(f"precise exceptions  : {total_precise} "
          f"(consumer loads touching unresolved pages)")

    # The PC guarantee survives: if the consumer saw the flag, it saw
    # every heap word the producer wrote before the fence.
    for outcome in sorted(outcomes):
        values = dict(outcome)
        if values.get("flag") == 1:
            assert (values["w0"], values["w1"], values["w2"],
                    values["w3"]) == (10, 11, 12, 13), values
    print("\nPC guarantee held in every interleaving: flag=1 implies "
          "all four heap words visible,")
    print("even though three of the stores faulted after retiring.")


if __name__ == "__main__":
    main()
