#!/usr/bin/env python3
"""Stateless model checking over the operational machines.

Walks the exploration subsystem (`repro.explore`) end to end:

1. cross-check — exhaustively explore litmus tests on the
   operational TSO machine and diff against the axiomatic allowed
   set (bit-identical, by DPOR *and* the naive oracle);
2. reduction — what dynamic partial-order reduction saves over full
   interleaving enumeration;
3. drain policies — prove by exhaustion that same-stream FSB
   draining preserves PC on the MP shape for every faulting subset,
   then exhibit the split-stream Figure 2a race with its witnessing
   schedule;
4. fuzz + shrink — let the mutation fuzzer rediscover the race on a
   mutated program and ddmin it back to the 4-op core.

Run:  python examples/exploration.py
"""

import itertools

from repro.explore import (check_drain_policy, crosscheck_test,
                           explore, fuzz, machine_for)
from repro.litmus.library import (load_buffering, message_passing,
                                  store_buffering)
from repro.memmodel.imprecise import DrainPolicy

TESTS = [message_passing(), store_buffering(), load_buffering()]


def crosscheck() -> None:
    print("=== 1. Operational vs axiomatic (strategy='verify') ===")
    for test in TESTS:
        for model in ("SC", "PC", "WC"):
            check = crosscheck_test(test, model, strategy="verify")
            relation = "==" if check.require_equality else "<="
            print(f"  {test.name:3s} on {check.machine:4s}: "
                  f"operational {len(check.operational)} {relation} "
                  f"allowed {len(check.allowed)}  "
                  f"[{'ok' if check.ok else 'MISMATCH'}]")
            assert check.ok


def reduction() -> None:
    print("=== 2. DPOR reduction over full enumeration ===")
    for test in TESTS:
        threads, deps = test.to_events()
        machine = machine_for("PC", threads, extra_ppo=deps)
        dpor = explore(machine, strategy="dpor")
        naive = explore(machine, strategy="naive", dedupe_states=False)
        assert dpor.outcomes == naive.outcomes
        print(f"  {test.name:3s}: {naive.stats.interleavings:4d} "
              f"interleavings -> {dpor.stats.interleavings:3d} with "
              f"DPOR (same {len(dpor.outcomes)} outcomes)")


def drain_policies() -> None:
    print("=== 3. FSB drain policies, exhaustively ===")
    test = message_passing()
    locs = test.locations
    subsets = [c for r in range(1, len(locs) + 1)
               for c in itertools.combinations(locs, r)]
    for subset in subsets:
        check = check_drain_policy(test, DrainPolicy.SAME_STREAM,
                                   subset)
        assert check.preserves_model, subset
    print(f"  same-stream: zero PC/WC violations on {test.name} "
          f"across all {len(subsets)} faulting subsets")

    check = check_drain_policy(test, DrainPolicy.SPLIT_STREAM, ("y",))
    assert check.violations_pc
    print(f"  split-stream with data store faulting: "
          f"{len(check.violations_pc)} PC-forbidden outcome(s)")
    for outcome, schedule in sorted(check.violation_schedules.items()):
        print(f"    outcome {dict(outcome)} via")
        for step in schedule:
            print(f"      {step}")


def fuzz_and_shrink() -> None:
    print("=== 4. Fuzzing the drain policies ===")
    report = fuzz(seed=7, iterations=40, models=("SC", "PC"),
                  base_tests=[message_passing(), store_buffering()],
                  max_findings=3)
    assert not report.model_divergences
    print(f"  {report.iterations} mutants, "
        f"{len(report.model_divergences)} model divergences, "
        f"{len(report.policy_races)} policy race(s)")
    for finding in report.policy_races:
        assert finding.policy == DrainPolicy.SPLIT_STREAM.value
        if finding.shrunk is not None:
            print(f"  shrunk {finding.test.name}: "
                  f"{finding.shrunk.original_ops} ops -> "
                  f"{finding.shrunk.final_ops}")


def main() -> None:
    crosscheck()
    reduction()
    drain_policies()
    fuzz_and_shrink()
    print("exploration demo OK")


if __name__ == "__main__":
    main()
