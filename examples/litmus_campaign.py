#!/usr/bin/env python3
"""Litmus campaign — the paper's §6.3 methodology, end to end.

Generates litmus families covering all eight ordering-rule categories
of Table 6, runs each test many times on the functional engine with
*every test location's page marked faulting* (so loads raise precise
exceptions and stores imprecise ones), and verifies that the set of
observed outcomes never exceeds what the axiomatic reference model
allows — "no negative differences".

Run:  python examples/litmus_campaign.py [--model PC|WC] [--seeds N]
                                         [--jobs N]
"""

import argparse

from repro.analysis.reporting import render_table
from repro.litmus import RunConfig, all_library_tests, check_suite
from repro.litmus.generator import generate_all, tests_by_category
from repro.sim.config import ConsistencyModel


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="PC",
                        choices=["SC", "PC", "WC"],
                        help="engine consistency mode (default PC)")
    parser.add_argument("--seeds", type=int, default=25,
                        help="interleavings per test (default 25)")
    parser.add_argument("--no-faults", action="store_true",
                        help="skip EInject poisoning (clean baseline)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (outcomes identical "
                             "for any value; see docs/campaign.md)")
    args = parser.parse_args()

    tests = generate_all() + all_library_tests()
    by_category = tests_by_category(tests)
    print(f"running {len(tests)} litmus tests "
          f"({len(by_category)} Table 6 categories), "
          f"{args.seeds} seeds each, model={args.model}, "
          f"faults={'off' if args.no_faults else 'on'}\n")

    config = RunConfig(model=args.model, seeds=args.seeds,
                       inject_faults=not args.no_faults)
    report = check_suite(tests, config, jobs=args.jobs)

    rows = []
    for category, members in sorted(by_category.items()):
        verdicts = [v for v in report.verdicts if v.test.category == category]
        ok = sum(1 for v in verdicts if v.ok)
        exceptions = sum(v.run.imprecise_exceptions for v in verdicts)
        rows.append((category, len(members), ok, exceptions))
    rows.append(("TOTAL", report.tests,
                 report.tests - len(report.failures),
                 report.total_imprecise_exceptions))
    print(render_table(
        ["category", "tests", "passed", "imprecise exceptions"], rows,
        title="Litmus campaign (observed ⊆ allowed per test)"))
    print()
    print(report.summary())
    if not report.ok:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
