#!/usr/bin/env python3
"""The formalism as an executable object (paper §4).

Demonstrates the memory-model toolkit on its own, without the
simulator:

1. classic relaxations — which outcomes SC/PC/WC allow for
   store-buffering and message-passing;
2. the imprecise-store-exception transform: DETECT → PUT → GET →
   S_OS → RESOLVE chains, under both drain policies;
3. the executable Proof 1 (all four faulting cases of the
   store-store rule) and the Figure 2 race.

Run:  python examples/formal_model.py
"""

from repro.analysis.reporting import render_table
from repro.memmodel import (
    PC,
    SC,
    WC,
    DrainPolicy,
    allowed_outcomes,
    demonstrate_figure2_race,
    prove_rule_suite,
    transform,
)
from repro.memmodel.events import program
from repro.memmodel.proofs import observable_outcomes

A, B = 0xA00, 0xB00


def classic_relaxations() -> None:
    print("=== 1. Classic relaxations ===")
    sb0 = list(program(0, [("S", A, 1), ("L", B)]))
    sb1 = list(program(1, [("S", B, 1), ("L", A)]))
    both_zero = tuple(sorted([("r0.1", 0), ("r1.1", 0)]))
    rows = []
    for model in (SC, PC, WC):
        allowed = allowed_outcomes([sb0, sb1], model)
        rows.append(("store buffering: both loads 0", model.name,
                     "allowed" if both_zero in allowed else "forbidden"))
    mp0 = list(program(0, [("S", B, 1), ("S", A, 1)]))
    mp1 = list(program(1, [("L", A), ("L", B)]))
    stale = tuple(sorted([("r1.0", 1), ("r1.1", 0)]))
    for model in (SC, PC, WC):
        allowed = allowed_outcomes([mp0, mp1], model)
        rows.append(("message passing: flag set, data stale", model.name,
                     "allowed" if stale in allowed else "forbidden"))
    print(render_table(["behaviour", "model", "verdict"], rows))
    print()


def transform_demo() -> None:
    print("=== 2. The imprecise-store-exception transform ===")
    writer = list(program(0, [("S", A, 1), ("S", B, 1)]))
    observer = list(program(1, [("L", B), ("L", A)]))
    fault = [writer[0].uid]  # S(A) faults

    for policy in (DrainPolicy.SPLIT_STREAM, DrainPolicy.SAME_STREAM):
        tr = transform([writer, observer], fault, policy)
        chain = " <m ".join(
            str(e.kind.value) for e in sorted(
                tr.extra_events, key=lambda e: e.index))
        outcomes = observable_outcomes([writer, observer], PC, fault,
                                       policy)
        violating = tuple(sorted([("r1.0", 1), ("r1.1", 0)]))
        print(f"{policy.value:>5} stream: protocol chain [{chain}]")
        print(f"            PC-violating outcome observable: "
              f"{violating in outcomes}")
    print()


def executable_proofs() -> None:
    print("=== 3. Executable proofs ===")
    for report in prove_rule_suite():
        print(report.summary())
        assert report.holds
    print()
    race = demonstrate_figure2_race()
    print(race.summary())
    assert race.matches_paper


if __name__ == "__main__":
    classic_relaxations()
    transform_demo()
    executable_proofs()
    print("\nformal model demo OK")
