#!/usr/bin/env python3
"""Quickstart: imprecise store exceptions in five minutes.

Walks the library's core flow end to end:

1. run a tiny two-core program on the functional engine,
2. poison a page through the EInject MMIO interface,
3. watch the store buffer drain into the Faulting Store Buffer and
   the OS handler resolve + apply the faulting stores,
4. audit the Table 5 contract,
5. cross-check the observed outcomes against the axiomatic model.

Run:  python examples/quickstart.py
"""

from repro.litmus import RunConfig, allowed_set, check_test
from repro.litmus.library import message_passing
from repro.memmodel import PC
from repro.sim import isa
from repro.sim.config import ConsistencyModel, small_config
from repro.sim.multicore import MulticoreSystem
from repro.sim.program import make_program

FLAG, DATA = 0x1000, 0x2000


def run_once_with_faults() -> None:
    """One message-passing run with the data page poisoned."""
    print("=== 1. A message-passing program with a faulting page ===")
    writer = [
        isa.store(DATA, value=42),    # payload
        isa.store(FLAG, value=1),     # ready flag (PC orders these)
    ]
    reader = [
        isa.load(1, FLAG, label="flag"),
        isa.load(2, DATA, label="data"),
    ]
    program = make_program([writer, reader], name="quickstart-mp")

    system = MulticoreSystem(program,
                             small_config(2, ConsistencyModel.PC),
                             seed=1)
    # Poison the payload's page via the EInject `set` register: the
    # writer's store will be denied below the LLC, detected after
    # retirement, and handled as an *imprecise store exception*.
    system.inject_faults([DATA])

    result = system.run()
    print(f"observations      : {result.observations}")
    print(f"final memory      : DATA={result.memory_value(DATA)} "
          f"FLAG={result.memory_value(FLAG)}")
    print(f"imprecise exc.    : {result.stats.imprecise_exceptions}")
    print(f"precise exc.      : {result.stats.precise_exceptions}")
    print(f"contract          : {result.contract_report.summary()}")
    assert result.memory_value(DATA) == 42  # the OS applied the store
    print()


def explore_outcomes() -> None:
    """Many seeds explore the interleavings; PC forbids flag=1,data=0."""
    print("=== 2. Outcome exploration across 200 interleavings ===")
    outcomes = set()
    for seed in range(200):
        writer = [isa.store(DATA, value=42), isa.store(FLAG, value=1)]
        reader = [isa.load(1, FLAG, label="flag"),
                  isa.load(2, DATA, label="data")]
        system = MulticoreSystem(
            make_program([writer, reader]),
            small_config(2, ConsistencyModel.PC), seed=seed)
        system.inject_faults([DATA, FLAG])
        outcomes.add(system.run().outcome)
    for outcome in sorted(outcomes):
        print(f"  observed: {dict(outcome)}")
    violating = (("data", 0), ("flag", 1))
    assert violating not in outcomes, "PC violation!"
    print("  -> flag=1 with stale data never observed: PC preserved "
          "despite every page faulting.\n")


def check_against_model() -> None:
    """The litmus harness automates the model cross-check."""
    print("=== 3. Litmus harness: observed vs axiomatic allowed set ===")
    test = message_passing()
    allowed = allowed_set(test, PC)
    readable = sorted((dict(o) for o in allowed), key=str)
    print(f"PC allows {len(allowed)} outcomes for MP: {readable}")
    verdict = check_test(test, RunConfig(model=ConsistencyModel.PC,
                                         seeds=100, inject_faults=True))
    print(f"conformance       : {verdict.conformance.summary()}")
    assert verdict.ok


if __name__ == "__main__":
    run_once_with_faults()
    explore_outcomes()
    check_against_model()
    print("quickstart OK")
