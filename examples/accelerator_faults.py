#!/usr/bin/env python3
"""Near-memory accelerator fault injection — the täkō/Midgard scenario.

A graph-analytics workload allocates its graph from memory monitored
by a near-memory compute unit (modelled by EInject).  Servicing a
store can then fault *after the store retired* — the situation the
paper is about.  This example measures the end-to-end cost of
handling those faults with the minimal handler vs the batching
handler, and shows the store-buffer-disabled (SC) alternative the
paper rejects in §2.3.

Run:  python examples/accelerator_faults.py [--kernel BFS|SSSP|BC]
"""

import argparse

from repro.analysis.reporting import render_table
from repro.core.handler import BatchingHandler, MinimalHandler
from repro.sim.config import ConsistencyModel, table2_config
from repro.sim.devices.einject import EInject
from repro.sim.timing import run_trace
from repro.workloads import build_workload


def run_variant(workload, config, inject, batching=False):
    einject = None
    handler = None
    if inject:
        einject = EInject()
        for page in workload.injectable_pages():
            einject.mmio_set(page)
        handler_cls = BatchingHandler if batching else MinimalHandler
        handler = handler_cls(config.os)
    return run_trace(config, workload.traces, einject=einject,
                     handler=handler)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--kernel", default="BFS",
                        choices=["BFS", "SSSP", "BC"])
    parser.add_argument("--cores", type=int, default=2)
    parser.add_argument("--trials", type=int, default=8,
                        help="GAP source trials per core")
    args = parser.parse_args()

    workload = build_workload(args.kernel, cores=args.cores, scale=0.5,
                              inject=True, trials=args.trials)
    pages = len(workload.injectable_pages())
    print(f"{args.kernel}: {workload.total_ops()} trace ops across "
          f"{args.cores} cores; {pages} accelerator pages poisoned\n")

    wc_cfg = table2_config().with_consistency(ConsistencyModel.WC)
    sc_cfg = table2_config().with_consistency(ConsistencyModel.SC)

    baseline = run_variant(workload, wc_cfg, inject=False)
    minimal = run_variant(workload, wc_cfg, inject=True)
    batched = run_variant(workload, wc_cfg, inject=True, batching=True)
    sc_forced = run_variant(workload, sc_cfg, inject=False)

    def row(label, result, reference):
        return (label,
                f"{result.total_cycles:,.0f}",
                f"{100 * reference.total_cycles / result.total_cycles:.1f}%",
                result.total_imprecise_exceptions,
                result.total_faulting_stores)

    rows = [
        row("WC baseline (no faults)", baseline, baseline),
        row("WC + imprecise (minimal handler)", minimal, baseline),
        row("WC + imprecise (batching handler)", batched, baseline),
        row("SC forced-precise (no SB) — §2.3", sc_forced, baseline),
    ]
    print(render_table(
        ["configuration", "cycles", "relative perf",
         "imprecise exc", "faulting stores"], rows,
        title="Accelerator-generated store exceptions, end to end"))

    rel = baseline.total_cycles / minimal.total_cycles
    sc_rel = baseline.total_cycles / sc_forced.total_cycles
    print(f"\nimprecise handling keeps {100 * rel:.1f}% of WC "
          f"performance; disabling the store buffer keeps "
          f"{100 * sc_rel:.1f}%.")
    if args.kernel in ("BFS", "BC"):
        # Store-heavy kernels: the paper's core trade-off is stark.
        assert rel > sc_rel
    else:
        # SSSP has ~3 % stores (Table 3 speedup only 1.06x), so forced
        # SC is nearly free there — exactly what Table 3 predicts.
        print("(SSSP is store-light: forced SC costs little, per "
              "Table 3's 1.06x.)")


if __name__ == "__main__":
    main()
